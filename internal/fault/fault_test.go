package fault

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

var (
	campStart = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	campEnd   = campStart.AddDate(0, 0, 30)
)

func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{StationMTBF: 48 * time.Hour, StationMTTR: 6 * time.Hour}
	a := cfg.StationSchedule(42, "HK-01", campStart, campEnd)
	b := cfg.StationSchedule(42, "HK-01", campStart, campEnd)
	if len(a.Windows()) == 0 {
		t.Fatal("expected at least one outage over 30 days with MTBF 48h")
	}
	if !reflect.DeepEqual(a.Windows(), b.Windows()) {
		t.Fatal("same seed and config produced different outage schedules")
	}
	// A different station draws from its own stream.
	c := cfg.StationSchedule(42, "HK-02", campStart, campEnd)
	if reflect.DeepEqual(a.Windows(), c.Windows()) {
		t.Fatal("distinct stations share an outage schedule")
	}
	// A different seed reshuffles the same station.
	d := cfg.StationSchedule(43, "HK-01", campStart, campEnd)
	if reflect.DeepEqual(a.Windows(), d.Windows()) {
		t.Fatal("distinct seeds produced identical outage schedules")
	}
}

// TestScheduleDeterministicConcurrent builds the same schedule from many
// goroutines; under -race this also proves construction shares no state.
func TestScheduleDeterministicConcurrent(t *testing.T) {
	cfg := Config{
		StationMTBF: 48 * time.Hour, StationMTTR: 6 * time.Hour,
		Maintenance: []orbit.Window{{Start: campStart.Add(24 * time.Hour), End: campStart.Add(26 * time.Hour)}},
	}
	want := cfg.StationSchedule(7, "SYD-03", campStart, campEnd).Windows()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := cfg.StationSchedule(7, "SYD-03", campStart, campEnd).Windows()
			if !reflect.DeepEqual(got, want) {
				t.Error("concurrent construction diverged from serial schedule")
			}
		}()
	}
	wg.Wait()
}

// TestAvailabilityMonotoneInMTTR sweeps the repair time: longer outages must
// not increase availability. Averaged over a small fleet to wash out
// single-trajectory noise.
func TestAvailabilityMonotoneInMTTR(t *testing.T) {
	mttrs := []time.Duration{time.Hour, 4 * time.Hour, 12 * time.Hour, 24 * time.Hour}
	prev := 2.0
	for _, mttr := range mttrs {
		cfg := Config{StationMTBF: 48 * time.Hour, StationMTTR: mttr}
		sum := 0.0
		const fleet = 32
		for i := 0; i < fleet; i++ {
			s := cfg.StationSchedule(42, fmt.Sprintf("ST-%02d", i), campStart, campEnd)
			av := s.Availability(campStart, campEnd)
			if av < 0 || av > 1 {
				t.Fatalf("availability %v outside [0,1]", av)
			}
			sum += av
		}
		mean := sum / fleet
		if mean >= prev {
			t.Fatalf("mean availability %.4f at MTTR %v did not decrease (was %.4f)", mean, mttr, prev)
		}
		prev = mean
	}
}

func TestMaintenanceOnlySchedule(t *testing.T) {
	m := []orbit.Window{
		{Start: campStart.Add(2 * time.Hour), End: campStart.Add(3 * time.Hour)},
		{Start: campStart.Add(150 * time.Minute), End: campStart.Add(4 * time.Hour)}, // overlaps the first
		{Start: campStart.Add(10 * time.Hour), End: campStart.Add(11 * time.Hour)},
	}
	cfg := Config{Maintenance: m}
	if !cfg.Enabled() {
		t.Fatal("maintenance-only config should count as enabled")
	}
	s := cfg.StationSchedule(1, "X", campStart, campEnd)
	want := []orbit.Window{
		{Start: campStart.Add(2 * time.Hour), End: campStart.Add(4 * time.Hour)},
		{Start: campStart.Add(10 * time.Hour), End: campStart.Add(11 * time.Hour)},
	}
	if !reflect.DeepEqual(s.Windows(), want) {
		t.Fatalf("merged maintenance windows = %v, want %v", s.Windows(), want)
	}
}

func TestScheduleQueries(t *testing.T) {
	h := func(n int) time.Time { return campStart.Add(time.Duration(n) * time.Hour) }
	s := newSchedule([]orbit.Window{
		{Start: h(2), End: h(4)},
		{Start: h(10), End: h(11)},
	})
	if s.Down(h(1)) || s.Down(h(4)) || s.Down(h(5)) {
		t.Fatal("Down true outside outage windows")
	}
	if !s.Down(h(2)) || !s.Down(h(3)) || !s.Down(h(10)) {
		t.Fatal("Down false inside outage windows")
	}
	if got := s.NextUp(h(3)); !got.Equal(h(4)) {
		t.Fatalf("NextUp mid-outage = %v, want %v", got, h(4))
	}
	if got := s.NextUp(h(5)); !got.Equal(h(5)) {
		t.Fatalf("NextUp while up = %v, want itself", got)
	}
	if got := s.DownTime(h(0), h(24)); got != 3*time.Hour {
		t.Fatalf("DownTime = %v, want 3h", got)
	}
	if got := s.DownTime(h(3), h(24)); got != 2*time.Hour {
		t.Fatalf("clipped DownTime = %v, want 2h", got)
	}
	if got := s.OutageCount(h(0), h(24)); got != 2 {
		t.Fatalf("OutageCount = %d, want 2", got)
	}
	if got := s.OutageCount(h(5), h(9)); got != 0 {
		t.Fatalf("OutageCount in quiet span = %d, want 0", got)
	}
	if got := s.Availability(h(0), h(24)); got != 1-3.0/24 {
		t.Fatalf("Availability = %v, want %v", got, 1-3.0/24)
	}
}

func TestZeroScheduleAlwaysUp(t *testing.T) {
	var s Schedule
	if s.Down(campStart) {
		t.Fatal("zero schedule reports down")
	}
	if got := s.Availability(campStart, campEnd); got != 1 {
		t.Fatalf("zero schedule availability = %v, want 1", got)
	}
	if got := s.NextUp(campStart); !got.Equal(campStart) {
		t.Fatalf("zero schedule NextUp = %v, want input", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"full", Config{StationMTBF: time.Hour, StationMTTR: time.Minute}, true},
		{"negative mtbf", Config{StationMTBF: -time.Hour, StationMTTR: time.Minute}, false},
		{"mtbf without mttr", Config{StationMTBF: time.Hour}, false},
		{"mttr without mtbf", Config{DrainMTTR: time.Hour}, false},
		{"sat pair mismatch", Config{SatMTBF: time.Hour}, false},
		{"inverted maintenance", Config{Maintenance: []orbit.Window{{Start: campEnd, End: campStart}}}, false},
		{"empty maintenance window", Config{Maintenance: []orbit.Window{{Start: campStart, End: campStart}}}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: expected error", tc.name)
			} else if !errors.Is(err, ErrBadConfig) {
				t.Errorf("%s: error %v does not wrap ErrBadConfig", tc.name, err)
			}
		}
	}
}

func TestAvailabilityEmptyScheduleIsExactlyOne(t *testing.T) {
	var s Schedule
	if got := s.Availability(campStart, campEnd); got != 1 {
		t.Fatalf("empty schedule availability = %v, want exactly 1", got)
	}
	// Degenerate spans must not divide by zero: both orders return 1.
	if got := s.Availability(campStart, campStart); got != 1 {
		t.Fatalf("zero-span availability = %v, want 1", got)
	}
	if got := s.Availability(campEnd, campStart); got != 1 {
		t.Fatalf("negative-span availability = %v, want 1", got)
	}
}

func TestAvailabilityFullOutageIsExactlyZero(t *testing.T) {
	// Maintenance covering the whole window (and spilling past both edges)
	// leaves no up time: the fraction must be exactly 0, not merely small.
	cfg := Config{Maintenance: []orbit.Window{{
		Start: campStart.Add(-time.Hour),
		End:   campEnd.Add(time.Hour),
	}}}
	s := cfg.StationSchedule(1, "gs", campStart, campEnd)
	if got := s.Availability(campStart, campEnd); got != 0 {
		t.Fatalf("fully-covered window availability = %v, want exactly 0", got)
	}
	if !s.Down(campStart) || !s.Down(campEnd.Add(-time.Second)) {
		t.Fatal("schedule not down across the window")
	}
	if got := s.DownTime(campStart, campEnd); got != campEnd.Sub(campStart) {
		t.Fatalf("downtime = %v, want the full span %v", got, campEnd.Sub(campStart))
	}
}

func TestAvailabilityDegenerateSpanWithOutages(t *testing.T) {
	cfg := Config{Maintenance: []orbit.Window{{Start: campStart, End: campEnd}}}
	s := cfg.StationSchedule(1, "gs", campStart, campEnd)
	// Even a fully-down schedule reports 1 for an empty span — the
	// convention core.PassiveResult relies on to avoid NaN in reports.
	if got := s.Availability(campStart, campStart); got != 1 {
		t.Fatalf("zero-span availability on down schedule = %v, want 1", got)
	}
}

func TestLinkScheduleDeterministicPerLink(t *testing.T) {
	cfg := Config{LinkMTBF: 4 * time.Hour, LinkMTTR: 30 * time.Minute}
	a := cfg.LinkSchedule(42, LinkID(91002, 91001), campStart, campEnd)
	b := cfg.LinkSchedule(42, LinkID(91001, 91002), campStart, campEnd)
	if len(a.Windows()) == 0 {
		t.Fatal("no outages drawn — vacuous determinism check")
	}
	// The canonical LinkID makes both directions share one schedule.
	if !reflect.DeepEqual(a.Windows(), b.Windows()) {
		t.Fatal("link directions disagree on the outage schedule")
	}
	// A different link draws from its own stream.
	other := cfg.LinkSchedule(42, LinkID(91001, 91003), campStart, campEnd)
	if reflect.DeepEqual(a.Windows(), other.Windows()) {
		t.Fatal("distinct links share an outage schedule")
	}
	// A different seed perturbs the schedule.
	reseeded := cfg.LinkSchedule(43, LinkID(91001, 91002), campStart, campEnd)
	if reflect.DeepEqual(a.Windows(), reseeded.Windows()) {
		t.Fatal("reseeding did not change the schedule")
	}
}

func TestLinkIDCanonical(t *testing.T) {
	if got := LinkID(91002, 91001); got != "91001-91002" {
		t.Errorf("LinkID = %q, want lower NORAD first", got)
	}
	if LinkID(1, 2) != LinkID(2, 1) {
		t.Error("LinkID is direction-sensitive")
	}
}

func TestValidateLinkPair(t *testing.T) {
	if err := (Config{LinkMTBF: time.Hour}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("half-set link pair validated: %v", err)
	}
	if err := (Config{LinkMTBF: -time.Hour, LinkMTTR: time.Hour}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative link MTBF validated: %v", err)
	}
	if err := (Config{LinkMTBF: time.Hour, LinkMTTR: time.Minute}).Validate(); err != nil {
		t.Errorf("valid link pair rejected: %v", err)
	}
	if !(Config{LinkMTBF: time.Hour, LinkMTTR: time.Minute}).Enabled() {
		t.Error("link churn alone does not enable the config")
	}
}
