package fault

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

func TestPanicNthPanicsExactlyOnce(t *testing.T) {
	hook := PanicNth(3)
	panics := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
					if i != 2 {
						t.Errorf("panicked on call %d, want call 3", i+1)
					}
				}
			}()
			hook()
		}()
	}
	if panics != 1 {
		t.Fatalf("panicked %d times, want exactly 1", panics)
	}
}

func TestPanicNthZeroNeverPanics(t *testing.T) {
	hook := PanicNth(0)
	for i := 0; i < 100; i++ {
		hook()
	}
}

func TestPanicNthConcurrentSinglePanic(t *testing.T) {
	hook := PanicNth(50)
	var mu sync.Mutex
	panics := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				func() {
					defer func() {
						if recover() != nil {
							mu.Lock()
							panics++
							mu.Unlock()
						}
					}()
					hook()
				}()
			}
		}()
	}
	wg.Wait()
	if panics != 1 {
		t.Fatalf("panicked %d times across goroutines, want exactly 1", panics)
	}
}

func TestJournalChaosDeterministicAndSeeded(t *testing.T) {
	pattern := func(seed int64, name string) []bool {
		hook := JournalChaos(seed, name, 0.3)
		out := make([]bool, 200)
		for i := range out {
			out[i] = hook("write") != nil
		}
		return out
	}
	a, b := pattern(42, "svc"), pattern(42, "svc")
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed/name diverged at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("p=0.3 produced %d/%d failures, want a nontrivial mix", fails, len(a))
	}
	c := pattern(43, "svc")
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical failure patterns")
	}
}

func TestJournalChaosErrorsWrapSentinel(t *testing.T) {
	hook := JournalChaos(1, "always", 1)
	err := hook("sync")
	if err == nil {
		t.Fatal("p=1 hook returned nil")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v does not wrap ErrInjected", err)
	}
	never := JournalChaos(1, "never", 0)
	for i := 0; i < 50; i++ {
		if err := never("write"); err != nil {
			t.Fatalf("p=0 hook failed: %v", err)
		}
	}
}

func TestScheduleStallOnlyDuringDownWindows(t *testing.T) {
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	// Hand-built schedule: down over virtual minutes [2, 4), so with a
	// one-minute step exactly ops 2 and 3 stall.
	sched := newSchedule([]orbit.Window{{Start: start.Add(2 * time.Minute), End: start.Add(4 * time.Minute)}})
	const stall = 30 * time.Millisecond
	hook := ScheduleStall(sched, start, time.Minute, stall)
	for i := 0; i < 6; i++ {
		before := time.Now()
		if err := hook("write"); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		took := time.Since(before)
		stalled := took >= stall
		wantStall := i == 2 || i == 3
		if stalled != wantStall {
			t.Errorf("op %d took %v, stall=%v want %v", i, took, stalled, wantStall)
		}
	}
}
