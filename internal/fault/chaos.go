package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sinet-io/sinet/internal/sim"
)

// This file is the chaos harness: deterministic process-level fault
// injectors for exercising the serving layer's crash-safety machinery.
// Where the rest of the package disrupts the *simulated* infrastructure
// (station churn, satellite blackouts), these disrupt the *simulator
// itself* — panicking workers, failing journal writes, stalling I/O — so
// the daemon's retry budgets, journal degradation and watchdog paths can
// be driven in tests without real hardware misbehaving on cue.

// ErrInjected is the sentinel wrapped by every chaos-injected error, so
// tests and callers can errors.Is the difference between injected faults
// and real ones.
var ErrInjected = errors.New("fault: injected")

// PanicNth returns a hook that panics on its nth invocation (1-based) and
// is a no-op on every other call. n <= 0 never panics. Safe for concurrent
// use; exactly one call panics. Wire it into a campaign runner to model a
// worker crashing mid-job: the serving layer must convert the panic into a
// retryable attempt failure instead of losing the worker.
func PanicNth(n int) func() {
	var calls atomic.Int64
	return func() {
		if n > 0 && calls.Add(1) == int64(n) {
			panic(fmt.Sprintf("fault: injected panic on call %d", n))
		}
	}
}

// JournalChaos returns a journal write/sync hook that fails operations
// with probability p, each verdict drawn from the named stream
// "chaos/journal/<name>" — the same seed and name always fail the same
// sequence of operations, and two differently-named hooks never share a
// pattern. The returned error wraps ErrInjected. p <= 0 never fails;
// p >= 1 always fails.
func JournalChaos(seed int64, name string, p float64) func(op string) error {
	rng := sim.NewRNG(seed, "chaos/journal/"+name)
	var mu sync.Mutex // RNG draws are not concurrency-safe
	return func(op string) error {
		mu.Lock()
		fail := rng.Bool(p)
		mu.Unlock()
		if fail {
			return fmt.Errorf("%w: journal %s failure", ErrInjected, op)
		}
		return nil
	}
}

// ScheduleStall returns a hook that models slow I/O: each invocation
// advances a virtual clock by step from start, and invocations landing in
// a down window of sched stall for the given duration before returning
// nil. Driving the schedule from the Gilbert machinery gives bursty,
// reproducible stall episodes rather than a uniform slowdown.
func ScheduleStall(sched Schedule, start time.Time, step, stall time.Duration) func(op string) error {
	var calls atomic.Int64
	return func(string) error {
		n := calls.Add(1) - 1
		if sched.Down(start.Add(time.Duration(n) * step)) {
			time.Sleep(stall)
		}
		return nil
	}
}
