package terrestrial

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/orbit"
)

var t0 = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func TestGatewayNearPerfectReliability(t *testing.T) {
	// §3.2: terrestrial LoRaWAN achieves nearly 100% reliability. A sensor
	// a few hundred metres away must essentially always get through.
	g := NewGateway("rak-1", orbit.NewGeodeticDeg(22.0, 101.0, 1.2), 7)
	ok := 0
	const n = 1000
	for i := 0; i < n; i++ {
		up := g.Receive(t0.Add(time.Duration(i)*time.Minute), 0.4, channel.Sunny, 20)
		if up.Received {
			ok++
			if up.ServerAt.IsZero() {
				t.Fatal("received packet has no delivery time")
			}
		}
	}
	if rate := float64(ok) / n; rate < 0.99 {
		t.Errorf("400 m terrestrial reliability = %.3f, want ≈1.0", rate)
	}
}

func TestGatewayLatencySubMinute(t *testing.T) {
	// Paper Fig. 5c: terrestrial average latency 0.2 min (≈12 s), which
	// is dominated by network/application-server processing rather than
	// the radio. Assert the same order: seconds, well under a minute.
	g := NewGateway("rak-1", orbit.NewGeodeticDeg(22.0, 101.0, 1.2), 8)
	var total time.Duration
	count := 0
	for i := 0; i < 500; i++ {
		tx := t0.Add(time.Duration(i) * time.Minute)
		up := g.Receive(tx, 0.4, channel.Sunny, 20)
		if !up.Received {
			continue
		}
		total += up.ServerAt.Sub(tx)
		count++
	}
	if count == 0 {
		t.Fatal("no packets received")
	}
	mean := total / time.Duration(count)
	if mean > 30*time.Second {
		t.Errorf("mean terrestrial latency = %v, want ≈0.2 min like the paper", mean)
	}
	if mean < time.Second {
		t.Errorf("mean terrestrial latency = %v suspiciously below server-processing floor", mean)
	}
	if mean <= 0 {
		t.Error("non-positive latency")
	}
}

func TestGatewayRangeDegradation(t *testing.T) {
	rate := func(distKm float64) float64 {
		g := NewGateway("rak-1", orbit.NewGeodeticDeg(22.0, 101.0, 1.2), 9)
		ok := 0
		const n = 400
		for i := 0; i < n; i++ {
			if g.Receive(t0, distKm, channel.Sunny, 20).Received {
				ok++
			}
		}
		return float64(ok) / n
	}
	near, far := rate(0.5), rate(60)
	if far >= near {
		t.Errorf("rate at 60 km (%.2f) not below 0.5 km (%.2f)", far, near)
	}
}

func TestDeploymentNearest(t *testing.T) {
	centre := orbit.NewGeodeticDeg(22.0, 101.0, 1.2)
	d := NewDeployment(3, centre, 11)
	if len(d.Gateways) != 3 {
		t.Fatalf("gateways = %d", len(d.Gateways))
	}
	// Distinct IDs and locations.
	seen := map[string]bool{}
	for _, g := range d.Gateways {
		if seen[g.ID] {
			t.Errorf("duplicate gateway ID %s", g.ID)
		}
		seen[g.ID] = true
	}
	sensor := orbit.NewGeodeticDeg(22.0005, 101.0, 1.2)
	g, dist := d.Nearest(sensor)
	if g == nil {
		t.Fatal("no nearest gateway")
	}
	if dist > 1.0 {
		t.Errorf("nearest distance = %.2f km, want < 1 km", dist)
	}
	// The nearest really is nearest.
	for _, other := range d.Gateways {
		if od := orbit.HaversineKm(sensor, other.Location); od < dist-1e-9 {
			t.Errorf("gateway %s at %.3f km closer than reported nearest %.3f km", other.ID, od, dist)
		}
	}
}

func TestEmptyDeployment(t *testing.T) {
	d := &Deployment{}
	g, _ := d.Nearest(orbit.NewGeodeticDeg(0, 0, 0))
	if g != nil {
		t.Error("empty deployment returned a gateway")
	}
}
