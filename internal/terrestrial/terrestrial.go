// Package terrestrial models the paper's comparison baseline (§3.2): a
// LoRaWAN deployment of RAKwireless gateways with LTE backhaul serving the
// same sensors. Links are short (hundreds of metres to a few km), so
// reliability is near-perfect and latency is dominated by the LoRa airtime
// plus the LTE hop — the paper's 0.2-minute average.
package terrestrial

import (
	"time"

	"github.com/sinet-io/sinet/internal/backhaul"
	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/lora"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/radio"
	"github.com/sinet-io/sinet/internal/sim"
)

// Gateway is one terrestrial LoRaWAN gateway.
type Gateway struct {
	ID       string
	Location orbit.Geodetic
	Link     *radio.Link
	Backhaul *backhaul.LTEBackhaul
}

// NewGateway builds a gateway at loc with a terrestrial LoRa receive chain.
func NewGateway(id string, loc orbit.Geodetic, seed int64) *Gateway {
	budget := channel.Budget{
		TxPowerDBm:   14, // EU/CN uplink power class for terrestrial LoRa
		TxAntenna:    channel.QuarterWave,
		RxAntenna:    channel.Antenna{Name: "gateway fiberglass", GainDB: 5},
		RxNoiseFigDB: 6,
	}
	model := channel.NewModel(sim.NewRNG(seed, "terr-chan/"+id))
	// Terrestrial shadowing is harsher than the open-sky DtS case, but the
	// link is three orders of magnitude shorter.
	model.ShadowSigmaDB = 4.0
	model.RicianK = 4.0
	return &Gateway{
		ID:       id,
		Location: loc,
		Link:     radio.NewLink(lora.DefaultTerrestrialParams(), budget, model, 470.0, sim.NewRNG(seed, "terr-rx/"+id)),
		Backhaul: backhaul.NewLTEBackhaul(sim.NewRNG(seed, "terr-lte/"+id)),
	}
}

// Uplink is the outcome of one sensor transmission through the gateway.
type Uplink struct {
	Received bool
	RSSIDBm  float64
	SNRDB    float64
	// ServerAt is when the packet reached the subscriber server (zero if
	// not received).
	ServerAt time.Time
}

// Receive simulates one sensor packet sent at txAt from distanceKm away
// under the given weather, returning radio outcome and delivery time.
func (g *Gateway) Receive(txAt time.Time, distanceKm float64, w channel.Weather, payloadBytes int) Uplink {
	geom := radio.Geometry{
		DistanceKm: distanceKm,
		// Terrestrial links graze the ground; reuse the low-elevation
		// atmosphere clamp as a proxy for ground clutter.
		ElevationRad: 0.05,
	}
	rc := g.Link.Transmit(geom, w, payloadBytes)
	up := Uplink{Received: rc.Decoded, RSSIDBm: rc.RSSIDBm, SNRDB: rc.SNRDB}
	if rc.Decoded {
		rxDone := txAt.Add(g.Link.Params.Airtime(payloadBytes))
		up.ServerAt = g.Backhaul.DeliverAt(rxDone)
	}
	return up
}

// Deployment is a set of gateways serving a set of sensor positions, with
// each sensor attached to its nearest gateway.
type Deployment struct {
	Gateways []*Gateway
}

// NewDeployment places n gateways around a site centre, a few hundred
// metres apart, mirroring the paper's three-gateway plantation layout.
func NewDeployment(n int, centre orbit.Geodetic, seed int64) *Deployment {
	d := &Deployment{}
	for i := 0; i < n; i++ {
		// ~0.005° ≈ 550 m spacing.
		loc := orbit.NewGeodeticDeg(
			centre.LatDeg()+0.005*float64(i),
			centre.LonDeg()+0.004*float64(i%2),
			centre.Alt)
		d.Gateways = append(d.Gateways, NewGateway(
			"rak-"+string(rune('1'+i)), loc, seed+int64(i)))
	}
	return d
}

// Nearest returns the gateway closest to the sensor position and the
// distance to it in km.
func (d *Deployment) Nearest(sensor orbit.Geodetic) (*Gateway, float64) {
	var best *Gateway
	bestD := 0.0
	for _, g := range d.Gateways {
		dist := orbit.HaversineKm(sensor, g.Location)
		if best == nil || dist < bestD {
			best, bestD = g, dist
		}
	}
	return best, bestD
}
