package channel

import (
	"fmt"
	"math"
	"time"
)

// Antenna describes a ground antenna profile. The paper compares 1/4-wave
// and 5/8-wave whips on the Tianqi nodes (Fig. 5b): the 5/8λ whip has ~3 dB
// more gain toward low/mid elevations.
type Antenna struct {
	Name   string
	GainDB float64
}

// Antenna profiles used across the experiments.
var (
	// QuarterWave is the stock 1/4λ whip.
	QuarterWave = Antenna{Name: "1/4 wavelength", GainDB: 0.0}
	// FiveEighthsWave is the upgraded 5/8λ whip.
	FiveEighthsWave = Antenna{Name: "5/8 wavelength", GainDB: 3.0}
	// SatelliteDipole is the simple dipole IoT satellites carry (§2.1:
	// "simple hardware such as dipole antennas with no beamforming").
	SatelliteDipole = Antenna{Name: "satellite dipole", GainDB: 2.0}
	// TinyGSGroundAntenna is a small fixed ground-station antenna.
	TinyGSGroundAntenna = Antenna{Name: "tinygs ground", GainDB: 2.0}
)

// Budget is a directional link budget: transmitter EIRP through the channel
// to receiver input.
type Budget struct {
	TxPowerDBm   float64
	TxAntenna    Antenna
	RxAntenna    Antenna
	RxNoiseFigDB float64
	ImplLossDB   float64 // implementation/cable losses
}

// Received summarizes the receiver-side result of one packet.
type Received struct {
	RSSIDBm float64
	SNRDB   float64
	Loss    Loss
}

// Apply realizes the channel and returns received RSSI and SNR over the
// given signal bandwidth.
func (b Budget) Apply(m *Model, distanceKm, freqMHz, elevationRad float64, w Weather, bandwidthHz float64) Received {
	return b.ApplyAt(time.Time{}, m, distanceKm, freqMHz, elevationRad, w, bandwidthHz)
}

// ApplyAt realizes the channel at a timestamp so shadowing correlates
// across nearby packets (see Model.SampleAt).
func (b Budget) ApplyAt(at time.Time, m *Model, distanceKm, freqMHz, elevationRad float64, w Weather, bandwidthHz float64) Received {
	loss := m.SampleAt(at, distanceKm, freqMHz, elevationRad, w)
	rssi := b.TxPowerDBm + b.TxAntenna.GainDB + b.RxAntenna.GainDB - b.ImplLossDB - loss.TotalDB
	noise := noiseFloorDBm(bandwidthHz, b.RxNoiseFigDB)
	return Received{RSSIDBm: rssi, SNRDB: rssi - noise, Loss: loss}
}

// MeanRSSI returns the deterministic expected RSSI (no fading draws).
func (b Budget) MeanRSSI(distanceKm, freqMHz, elevationRad float64, w Weather) float64 {
	return b.TxPowerDBm + b.TxAntenna.GainDB + b.RxAntenna.GainDB - b.ImplLossDB -
		MeanLossDB(distanceKm, freqMHz, elevationRad, w)
}

// noiseFloorDBm duplicates lora.NoiseFloorDBm to keep the channel package
// free of a lora dependency (the two packages are composed by callers).
func noiseFloorDBm(bandwidthHz, noiseFigureDB float64) float64 {
	return -174.0 + 10.0*math.Log10(bandwidthHz) + noiseFigureDB
}

// String implements fmt.Stringer.
func (r Received) String() string {
	return fmt.Sprintf("rssi=%.1fdBm snr=%.1fdB", r.RSSIDBm, r.SNRDB)
}
