// Package channel models the space-ground radio channel of Direct-to-
// Satellite IoT links: free-space path loss, elevation-dependent
// atmospheric absorption, weather (rain) attenuation, log-normal shadowing
// and Rician small-scale fading, composed into a link budget that yields
// the received power and SNR the LoRa demodulator sees.
package channel

import (
	"fmt"
	"math"
	"time"

	"github.com/sinet-io/sinet/internal/sim"
)

// FreeSpacePathLossDB returns the free-space path loss in dB for a
// distance in km and frequency in MHz: 32.45 + 20log10(d) + 20log10(f).
func FreeSpacePathLossDB(distanceKm, freqMHz float64) float64 {
	if distanceKm <= 0 || freqMHz <= 0 {
		return 0
	}
	return 32.45 + 20*math.Log10(distanceKm) + 20*math.Log10(freqMHz)
}

// AtmosphericLossDB returns gaseous/tropospheric absorption as a function
// of elevation. At UHF the zenith loss is small (~0.1-0.3 dB) but the slant
// path through the troposphere grows as 1/sin(el), and below ~5° ground
// multipath and tropospheric effects add several more dB. The model is the
// standard cosecant law clamped at low elevation.
func AtmosphericLossDB(elevationRad float64) float64 {
	const zenithLossDB = 0.2
	el := elevationRad
	if el < 2.0*math.Pi/180.0 {
		el = 2.0 * math.Pi / 180.0 // clamp the cosecant blow-up
	}
	loss := zenithLossDB / math.Sin(el)
	// Extra low-elevation degradation (multipath, foliage, horizon
	// obstructions) below 10°, up to ~4 dB at the clamp.
	const lowElKnee = 10.0 * math.Pi / 180.0
	if elevationRad < lowElKnee {
		frac := (lowElKnee - math.Max(elevationRad, 0)) / lowElKnee
		loss += 4.0 * frac * frac
	}
	return loss
}

// Weather is the sky condition over a site, driving rain attenuation and
// extra scintillation.
type Weather int

// Weather states.
const (
	Sunny Weather = iota
	Cloudy
	Rainy
	Stormy
)

// String implements fmt.Stringer.
func (w Weather) String() string {
	switch w {
	case Sunny:
		return "sunny"
	case Cloudy:
		return "cloudy"
	case Rainy:
		return "rainy"
	case Stormy:
		return "stormy"
	default:
		return fmt.Sprintf("Weather(%d)", int(w))
	}
}

// AttenuationDB returns the mean excess attenuation of the weather state at
// UHF. Rain fade at 400-450 MHz is far smaller than at Ku/Ka band but wet
// foliage, antenna wetting and increased sky noise measurably reduce the
// margin of links that are already borderline, which is exactly the regime
// the paper's DtS links occupy.
func (w Weather) AttenuationDB() float64 {
	switch w {
	case Sunny:
		return 0
	case Cloudy:
		return 0.5
	case Rainy:
		return 2.0
	case Stormy:
		return 4.0
	default:
		return 0
	}
}

// ScintillationSigmaDB returns extra fading variance under the weather
// state.
func (w Weather) ScintillationSigmaDB() float64 {
	switch w {
	case Sunny:
		return 0
	case Cloudy:
		return 0.3
	case Rainy:
		return 1.6
	case Stormy:
		return 2.6
	default:
		return 0
	}
}

// Model is a composed stochastic channel for one site. It is deterministic
// given its RNG stream.
type Model struct {
	// ShadowSigmaDB is the log-normal shadowing standard deviation. DtS
	// links with clear sky view see 1.5-3 dB.
	ShadowSigmaDB float64
	// RicianK is the linear K-factor of small-scale fading. LEO links have
	// a strong line-of-sight: K ≈ 10 (10 dB) is typical at high elevation.
	RicianK float64
	// ShadowCoherence is the AR(1) time constant of the shadowing process.
	// Shadowing on a static ground terminal is quasi-static over tens of
	// seconds — the property that makes beacon-gated transmission work
	// (§F: data goes out when the link has just proven itself good).
	// Zero disables correlation (every sample independent).
	ShadowCoherence time.Duration

	rng *sim.RNG

	// AR(1) state.
	lastAt     time.Time
	lastShadow float64
	haveState  bool

	// Memoized AR(1) coefficients for the last inter-sample gap. Beacons
	// arrive on a fixed cadence, so consecutive gaps repeat and the
	// exp/sqrt pair can be reused verbatim.
	lastDt       time.Duration
	lastRho      float64
	lastInnovStd float64
	haveRho      bool
}

// NewModel builds a channel model drawing from the given RNG stream.
func NewModel(rng *sim.RNG) *Model {
	return &Model{ShadowSigmaDB: 2.0, RicianK: 10.0, ShadowCoherence: 45 * time.Second, rng: rng}
}

// shadowAt returns the (possibly time-correlated) shadowing draw in dB.
func (m *Model) shadowAt(at time.Time, sigma float64) float64 {
	if m.ShadowCoherence <= 0 || at.IsZero() {
		return m.rng.LogNormalDB(sigma)
	}
	if !m.haveState || at.Before(m.lastAt) {
		m.lastShadow = m.rng.LogNormalDB(sigma)
		m.lastAt = at
		m.haveState = true
		return m.lastShadow
	}
	dt := at.Sub(m.lastAt)
	if !m.haveRho || dt != m.lastDt {
		m.lastRho = math.Exp(-dt.Seconds() / m.ShadowCoherence.Seconds())
		m.lastInnovStd = math.Sqrt(1 - m.lastRho*m.lastRho)
		m.lastDt = dt
		m.haveRho = true
	}
	m.lastShadow = m.lastRho*m.lastShadow + m.lastInnovStd*m.rng.LogNormalDB(sigma)
	m.lastAt = at
	return m.lastShadow
}

// Loss describes one realized link-budget computation.
type Loss struct {
	FSPLDB       float64
	AtmosphereDB float64
	WeatherDB    float64
	ShadowingDB  float64 // signed random draw
	FadingDB     float64 // signed random draw
	TotalDB      float64
}

// Sample realizes the total channel loss for one packet with an
// independent shadowing draw. Elevation controls the atmospheric term and
// scales fading severity (low passes graze more troposphere and
// multipath).
func (m *Model) Sample(distanceKm, freqMHz, elevationRad float64, w Weather) Loss {
	return m.SampleAt(time.Time{}, distanceKm, freqMHz, elevationRad, w)
}

// SampleAt realizes the loss for a packet at time at; consecutive calls
// with increasing timestamps see AR(1)-correlated shadowing.
func (m *Model) SampleAt(at time.Time, distanceKm, freqMHz, elevationRad float64, w Weather) Loss {
	l := Loss{
		FSPLDB:       FreeSpacePathLossDB(distanceKm, freqMHz),
		AtmosphereDB: AtmosphericLossDB(elevationRad),
		WeatherDB:    w.AttenuationDB(),
	}
	// Shadowing is slow (AR(1)-correlated); weather scintillation is a
	// fast, per-frame fluctuation — it cannot be predicted from a beacon
	// received a second earlier, which is why rainy days force extra
	// retransmissions even under beacon-gated access.
	l.ShadowingDB = m.shadowAt(at, m.ShadowSigmaDB)

	// Rician power gain → dB loss (negative gain is a fade). Lower
	// elevation weakens the LoS component.
	k := m.RicianK
	if elevationRad < 20*math.Pi/180 {
		frac := math.Max(elevationRad, 0) / (20 * math.Pi / 180)
		k = 1 + (m.RicianK-1)*frac
	}
	gain := m.rng.Rician(k)
	l.FadingDB = -10 * math.Log10(math.Max(gain, 1e-6))
	if scint := w.ScintillationSigmaDB(); scint > 0 {
		l.FadingDB += m.rng.LogNormalDB(scint)
	}

	l.TotalDB = l.FSPLDB + l.AtmosphereDB + l.WeatherDB + l.ShadowingDB + l.FadingDB
	return l
}

// MeanLossDB returns the deterministic portion of the loss (no random
// draws), used for theoretical link-budget tables.
func MeanLossDB(distanceKm, freqMHz, elevationRad float64, w Weather) float64 {
	return FreeSpacePathLossDB(distanceKm, freqMHz) +
		AtmosphericLossDB(elevationRad) +
		w.AttenuationDB()
}
