package channel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sinet-io/sinet/internal/sim"
)

func TestFSPLKnownValues(t *testing.T) {
	// 1 km at 1 MHz is the formula's reference: 32.45 dB.
	if got := FreeSpacePathLossDB(1, 1); math.Abs(got-32.45) > 1e-9 {
		t.Errorf("FSPL(1km,1MHz) = %v", got)
	}
	// 1000 km at 435 MHz: 32.45 + 60 + 52.77 = 145.2 dB.
	if got := FreeSpacePathLossDB(1000, 435); math.Abs(got-145.22) > 0.05 {
		t.Errorf("FSPL(1000km,435MHz) = %.2f, want ≈145.22", got)
	}
	if FreeSpacePathLossDB(0, 435) != 0 || FreeSpacePathLossDB(100, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestFSPLInverseSquare(t *testing.T) {
	// Doubling the distance adds exactly 6.02 dB.
	prop := func(dQ uint16) bool {
		d := 100 + float64(dQ)
		diff := FreeSpacePathLossDB(2*d, 435) - FreeSpacePathLossDB(d, 435)
		return math.Abs(diff-20*math.Log10(2)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAtmosphericLossShape(t *testing.T) {
	// Monotone decreasing with elevation, small at zenith, several dB at
	// the horizon.
	prev := math.Inf(1)
	for deg := 0.0; deg <= 90; deg += 5 {
		loss := AtmosphericLossDB(deg * math.Pi / 180)
		if loss > prev+1e-9 {
			t.Errorf("atmospheric loss increased at %v°", deg)
		}
		prev = loss
	}
	if z := AtmosphericLossDB(math.Pi / 2); z > 0.5 {
		t.Errorf("zenith loss %v dB too high", z)
	}
	if h := AtmosphericLossDB(0); h < 3 {
		t.Errorf("horizon loss %v dB too low to matter", h)
	}
}

func TestWeatherOrdering(t *testing.T) {
	states := []Weather{Sunny, Cloudy, Rainy, Stormy}
	for i := 1; i < len(states); i++ {
		if states[i].AttenuationDB() <= states[i-1].AttenuationDB() {
			t.Errorf("%v attenuation not above %v", states[i], states[i-1])
		}
		if states[i].ScintillationSigmaDB() <= states[i-1].ScintillationSigmaDB() {
			t.Errorf("%v scintillation not above %v", states[i], states[i-1])
		}
	}
	if Sunny.AttenuationDB() != 0 {
		t.Error("sunny must add no attenuation")
	}
	if Sunny.String() != "sunny" || Stormy.String() != "stormy" {
		t.Error("weather String() labels wrong")
	}
	if Weather(99).String() == "" || Weather(99).AttenuationDB() != 0 {
		t.Error("unknown weather must degrade gracefully")
	}
}

func TestModelSampleComposition(t *testing.T) {
	m := NewModel(sim.NewRNG(1, "chan"))
	l := m.Sample(1500, 435, 30*math.Pi/180, Rainy)
	if l.FSPLDB != FreeSpacePathLossDB(1500, 435) {
		t.Error("FSPL component mismatch")
	}
	if l.WeatherDB != Rainy.AttenuationDB() {
		t.Error("weather component mismatch")
	}
	sum := l.FSPLDB + l.AtmosphereDB + l.WeatherDB + l.ShadowingDB + l.FadingDB
	if math.Abs(sum-l.TotalDB) > 1e-9 {
		t.Error("TotalDB is not the sum of components")
	}
}

func TestModelDeterministicPerSeed(t *testing.T) {
	a := NewModel(sim.NewRNG(42, "chan"))
	b := NewModel(sim.NewRNG(42, "chan"))
	for i := 0; i < 50; i++ {
		la := a.Sample(1200, 435, 0.5, Sunny)
		lb := b.Sample(1200, 435, 0.5, Sunny)
		if la != lb {
			t.Fatal("same-seed channels diverged")
		}
	}
}

func TestModelMeanLossNearDeterministicPart(t *testing.T) {
	// Averaged over many samples, the random terms must be near zero-mean
	// (shadowing is zero-mean dB; Rician fading has E[gain]=1 which gives a
	// small positive dB loss bias by Jensen, bounded by ~1 dB at K=10).
	m := NewModel(sim.NewRNG(7, "chan"))
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Sample(1000, 435, 0.8, Sunny).TotalDB
	}
	mean := sum / n
	det := MeanLossDB(1000, 435, 0.8, Sunny)
	if math.Abs(mean-det) > 1.0 {
		t.Errorf("mean sampled loss %.2f vs deterministic %.2f differ by >1 dB", mean, det)
	}
}

func TestLowElevationFadesHarder(t *testing.T) {
	// Variance of the fade must be larger at 3° than at 60°.
	varOf := func(elev float64) float64 {
		m := NewModel(sim.NewRNG(9, "chan"))
		const n = 8000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			f := m.Sample(1000, 435, elev, Sunny).FadingDB
			sum += f
			sumSq += f * f
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	lo := varOf(3 * math.Pi / 180)
	hi := varOf(60 * math.Pi / 180)
	if lo <= hi {
		t.Errorf("fading variance at 3° (%v) not above 60° (%v)", lo, hi)
	}
}

func TestBudgetApply(t *testing.T) {
	m := NewModel(sim.NewRNG(3, "chan"))
	b := Budget{
		TxPowerDBm:   22,
		TxAntenna:    SatelliteDipole,
		RxAntenna:    TinyGSGroundAntenna,
		RxNoiseFigDB: 6,
	}
	r := b.Apply(m, 1000, 435, 0.5, Sunny, 125e3)
	// RSSI = 22 + 2 + 2 - loss; with FSPL≈145 expect ≈ -120±10 dBm.
	if r.RSSIDBm > -105 || r.RSSIDBm < -140 {
		t.Errorf("RSSI = %.1f dBm implausible for a 1000 km DtS link", r.RSSIDBm)
	}
	// SNR = RSSI - noise floor (-117).
	wantSNR := r.RSSIDBm - (-117.03)
	if math.Abs(r.SNRDB-wantSNR) > 0.01 {
		t.Errorf("SNR %.2f inconsistent with RSSI (want %.2f)", r.SNRDB, wantSNR)
	}
}

func TestBudgetMeanRSSIPaperBand(t *testing.T) {
	// The paper observes -140..-110 dBm from LEO IoT satellites. Our mean
	// budget at representative distances must land inside that band.
	b := Budget{
		TxPowerDBm:   22,
		TxAntenna:    SatelliteDipole,
		RxAntenna:    TinyGSGroundAntenna,
		RxNoiseFigDB: 6,
	}
	for _, d := range []float64{600, 1000, 2000, 3500} {
		elev := math.Asin(500 / d) // crude but representative
		rssi := b.MeanRSSI(d, 435, elev, Sunny)
		if rssi < -142 || rssi > -108 {
			t.Errorf("mean RSSI at %v km = %.1f dBm, outside the paper's -140..-110 band", d, rssi)
		}
	}
}

func TestAntennaGainOrdering(t *testing.T) {
	if FiveEighthsWave.GainDB <= QuarterWave.GainDB {
		t.Error("5/8λ must out-gain 1/4λ")
	}
	m := NewModel(sim.NewRNG(5, "chan"))
	base := Budget{TxPowerDBm: 22, TxAntenna: QuarterWave, RxAntenna: SatelliteDipole, RxNoiseFigDB: 6}
	up := base
	up.TxAntenna = FiveEighthsWave
	// Same RNG state ⇒ comparing means over many draws.
	var dLow, dHigh float64
	for i := 0; i < 2000; i++ {
		dLow += base.Apply(m, 1500, 435, 0.4, Sunny, 125e3).SNRDB
		dHigh += up.Apply(m, 1500, 435, 0.4, Sunny, 125e3).SNRDB
	}
	if dHigh-dLow < 1000*(FiveEighthsWave.GainDB-QuarterWave.GainDB) {
		t.Error("antenna gain not reflected in mean SNR")
	}
}
