package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) ||
		!math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) ||
		!math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty inputs must yield NaN")
	}
	if _, err := NewCDF(nil); err == nil {
		t.Error("NewCDF(nil) must fail")
	}
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("Summarize(nil).N = %d", s.N)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if Min(xs) != -9 || Max(xs) != 6 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Percentile must not mutate its input.
	in := []float64{5, 1, 3}
	Percentile(in, 50)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Error("Percentile mutated input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormFloat64() * 10
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		prev = v
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 || s.Median != 50 ||
		s.P25 != 25 || s.P75 != 75 || s.P90 != 90 || s.P95 != 95 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Mean != 50 {
		t.Errorf("Mean = %v", s.Mean)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(3); got != 0.6 {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(5); got != 1 {
		t.Errorf("At(5) = %v, want 1", got)
	}
	if got := c.At(2.5); got != 0.4 {
		t.Errorf("At(2.5) = %v, want 0.4", got)
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v, want 3", got)
	}
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		// CDF is monotone and bounded in [0,1].
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			f := c.At(x)
			if f < prev-1e-12 || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return c.At(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c, err := NewCDF([]float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 10 {
		t.Errorf("endpoint X = %v, %v", pts[0].X, pts[10].X)
	}
	if pts[10].Y != 1 {
		t.Errorf("final Y = %v", pts[10].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Error("CDF points not monotone")
		}
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %v", c)
	}
	if f := h.Fraction(0); f != 0.4 {
		t.Errorf("Fraction(0) = %v", f)
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("hi==lo accepted")
	}
	if _, err := NewHistogram(10, 0, 3); err == nil {
		t.Error("hi<lo accepted")
	}
}

func TestHistogramBoundaryRounding(t *testing.T) {
	h, err := NewHistogram(0, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 0.3 - epsilon must land in the last bin despite float division noise.
	h.Add(math.Nextafter(0.3, 0))
	if h.Counts[2] != 1 || h.Over != 0 {
		t.Errorf("boundary sample landed wrong: %v over=%d", h.Counts, h.Over)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Error("Ratio(10,4)")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero must be 0")
	}
}

func TestQuantilesMatchPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 40
	}
	qs := []float64{0.10, 0.50, 0.90, 0.99}
	got := Quantiles(xs, qs...)
	for i, q := range qs {
		if want := Percentile(xs, q*100); got[i] != want {
			t.Errorf("Quantiles[%v] = %v, Percentile = %v", q, got[i], want)
		}
	}
	// The batch helper must not disturb its input.
	if !sort.Float64sAreSorted(xs) {
		// xs was random; the real check is against a copy.
		cp := append([]float64(nil), xs...)
		Quantiles(xs, 0.5)
		for i := range xs {
			if xs[i] != cp[i] {
				t.Fatal("Quantiles mutated its input")
			}
		}
	}
}

func TestQuantilesEmpty(t *testing.T) {
	got := Quantiles(nil, 0.1, 0.5, 0.9)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if !math.IsNaN(v) {
			t.Errorf("empty quantile %d = %v, want NaN", i, v)
		}
	}
	if len(Quantiles(nil)) != 0 {
		t.Error("no quantiles requested must return empty slice")
	}
}

func TestQuantilesKnownValues(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Quantiles(xs, 0, 1)[0]; got != 15 {
		t.Errorf("q0 = %v, want 15", got)
	}
	if got := Quantiles(xs, 0, 1)[1]; got != 50 {
		t.Errorf("q1 = %v, want 50", got)
	}
	if got := Quantiles(xs, 0.5)[0]; got != 35 {
		t.Errorf("median = %v, want 35", got)
	}
}
