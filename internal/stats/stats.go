// Package stats provides the small statistical toolkit SINet's analyses
// use: empirical CDFs, histograms, percentiles and summary statistics.
// Everything operates on float64 slices and is allocation-conscious so the
// benchmark harness can call it in hot loops.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest sample, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest sample, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between order statistics, the same convention as numpy's
// default. The input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Quantiles evaluates many quantiles (each q in [0, 1]) against one sorted
// copy of xs: the sort is paid once however many quantiles are requested.
// Returns NaNs for an empty sample set. This — via percentileSorted — is
// the package's single quantile implementation: Percentile, Median,
// Summarize, CDF.Quantile and the report layer's latency CDFs all route
// through the same interpolation, so no two outputs can disagree on what
// "p90" means.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = percentileSorted(sorted, q*100)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics the report tables print.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary in one pass over a sorted copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P90:    percentileSorted(sorted, 90),
		P95:    percentileSorted(sorted, 95),
		Max:    sorted[len(sorted)-1],
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P90, s.Max)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (which it copies and sorts).
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// Index of the first element > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0, 1]).
func (c *CDF) Quantile(q float64) float64 {
	return percentileSorted(c.sorted, q*100)
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Points returns n evenly spaced (x, F(x)) pairs spanning the sample range,
// ready for plotting a CDF curve in the figure reports.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, Y: c.At(x)}
	}
	return pts
}

// Point is an (x, y) pair in a plotted series.
type Point struct {
	X, Y float64
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram [%v, %v) with %d bins", lo, hi, bins)
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / h.binWidth)
		if idx >= len(h.Counts) { // guard against float rounding at Hi
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// Fraction returns the fraction of in-range samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(total)
}

// Ratio returns a/b guarding against division by zero (returns 0).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
