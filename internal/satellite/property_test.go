package satellite

import (
	"testing"
	"testing/quick"
)

// TestBufferInvariants drives a buffer with a random push/flush script and
// checks the capacity, conservation and FIFO invariants throughout.
func TestBufferInvariants(t *testing.T) {
	prop := func(capQ uint8, script []uint8) bool {
		capacity := int(capQ % 16) // 0 = unbounded
		b := NewBuffer(capacity)
		var model []uint64 // reference queue
		next := uint64(0)
		pushed, dropped := 0, 0

		for _, op := range script {
			if op%3 == 0 && len(model) > 0 {
				// Flush and compare FIFO order with the model.
				got := b.Flush()
				if len(got) != len(model) {
					return false
				}
				for i := range got {
					if got[i].SeqID != model[i] {
						return false
					}
				}
				model = model[:0]
				continue
			}
			ok := b.Push(StoredPacket{SeqID: next})
			if capacity > 0 && len(model) >= capacity {
				if ok {
					return false // must have been rejected
				}
				dropped++
			} else {
				if !ok {
					return false // must have been accepted
				}
				model = append(model, next)
				pushed++
			}
			next++
		}

		if b.Len() != len(model) {
			return false
		}
		if capacity > 0 && b.Len() > capacity {
			return false
		}
		return b.Stored == pushed && b.Dropped == dropped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
