// Package satellite models the orbiting IoT gateway of a DtS system: a
// LEO satellite that broadcasts beacons, receives node uplinks, stores
// packets in a finite store-and-forward buffer, and downlinks the buffer
// when it passes over an operator ground station. Buffer pressure and
// drops model the "satellite resource constraints" the paper lists among
// DtS loss causes.
package satellite

import (
	"fmt"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

// StoredPacket is one uplinked IoT packet held on board.
type StoredPacket struct {
	NodeID       string
	SeqID        uint64
	PayloadBytes int
	// SentAt is when the node generated/transmitted the packet.
	SentAt time.Time
	// ReceivedAt is when the satellite decoded the uplink.
	ReceivedAt time.Time
	// Attempt is the uplink attempt index that succeeded.
	Attempt int
}

// Buffer is the on-board store-and-forward queue.
type Buffer struct {
	capacity int
	queue    []StoredPacket

	// Dropped counts packets rejected because the buffer was full.
	Dropped int
	// Stored counts total packets accepted.
	Stored int
}

// NewBuffer creates a buffer holding up to capacity packets. A zero or
// negative capacity means unbounded.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{capacity: capacity}
}

// Len returns the number of queued packets.
func (b *Buffer) Len() int { return len(b.queue) }

// Capacity returns the configured capacity (0 = unbounded).
func (b *Buffer) Capacity() int { return b.capacity }

// Push stores a packet, reporting false (and counting a drop) when full.
func (b *Buffer) Push(p StoredPacket) bool {
	if b.capacity > 0 && len(b.queue) >= b.capacity {
		b.Dropped++
		return false
	}
	b.queue = append(b.queue, p)
	b.Stored++
	return true
}

// Flush removes and returns every queued packet (FIFO order).
func (b *Buffer) Flush() []StoredPacket {
	out := b.queue
	b.queue = nil
	return out
}

// Gateway is one satellite acting as an IoT gateway.
//
// A Gateway owns its propagator and buffer and is not goroutine-safe;
// campaign workers that build gateways concurrently must hand each one its
// own Propagator.Clone().
type Gateway struct {
	NoradID int
	Name    string
	Prop    *orbit.Propagator
	Buffer  *Buffer

	// BeaconInterval is the gateway's beacon period.
	BeaconInterval time.Duration
	// AckTurnaround is the gap between decoding an uplink and transmitting
	// the ACK.
	AckTurnaround time.Duration
}

// NewGateway wraps a propagator as a gateway with the given buffer size.
func NewGateway(prop *orbit.Propagator, beaconInterval time.Duration, bufferCapacity int) *Gateway {
	els := prop.Elements()
	return &Gateway{
		NoradID:        els.NoradID,
		Name:           els.Name,
		Prop:           prop,
		Buffer:         NewBuffer(bufferCapacity),
		BeaconInterval: beaconInterval,
		AckTurnaround:  500 * time.Millisecond,
	}
}

// String implements fmt.Stringer.
func (g *Gateway) String() string {
	return fmt.Sprintf("gateway %s (NORAD %d, buffer %d/%d)", g.Name, g.NoradID, g.Buffer.Len(), g.Buffer.Capacity())
}

// BeaconTimes returns the beacon emission instants within [start, end):
// a deterministic grid anchored at the satellite's epoch so that beacon
// phase is stable across passes.
func (g *Gateway) BeaconTimes(start, end time.Time) []time.Time {
	if !end.After(start) || g.BeaconInterval <= 0 {
		return nil
	}
	epoch := g.Prop.Elements().Epoch
	offset := start.Sub(epoch)
	// First beacon at or after start.
	n := offset / g.BeaconInterval
	first := epoch.Add(n * g.BeaconInterval)
	for first.Before(start) {
		first = first.Add(g.BeaconInterval)
	}
	var out []time.Time
	for t := first; t.Before(end); t = t.Add(g.BeaconInterval) {
		out = append(out, t)
	}
	return out
}

// GeometryAt returns the look geometry from a ground point to the gateway
// at time t.
func (g *Gateway) GeometryAt(site orbit.Geodetic, t time.Time) (orbit.LookAngles, error) {
	r, v, err := g.Prop.PositionECEF(t)
	if err != nil {
		return orbit.LookAngles{}, err
	}
	return orbit.Look(site, r, v), nil
}

// AltitudeAt returns the satellite altitude at t.
func (g *Gateway) AltitudeAt(t time.Time) (float64, error) {
	geo, err := g.Prop.Subpoint(t)
	if err != nil {
		return 0, err
	}
	return geo.Alt, nil
}
