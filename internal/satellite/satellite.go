// Package satellite models the orbiting IoT gateway of a DtS system: a
// LEO satellite that broadcasts beacons, receives node uplinks, stores
// packets in a finite store-and-forward buffer, and downlinks the buffer
// when it passes over an operator ground station. Buffer pressure and
// drops model the "satellite resource constraints" the paper lists among
// DtS loss causes.
package satellite

import (
	"fmt"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

// StoredPacket is one uplinked IoT packet held on board.
type StoredPacket struct {
	NodeID       string
	SeqID        uint64
	PayloadBytes int
	// SentAt is when the node generated/transmitted the packet.
	SentAt time.Time
	// ReceivedAt is when the satellite decoded the uplink.
	ReceivedAt time.Time
	// Attempt is the uplink attempt index that succeeded.
	Attempt int
}

// Buffer is the on-board store-and-forward queue.
type Buffer struct {
	capacity int
	queue    []StoredPacket

	// Dropped counts packets rejected because the buffer was full.
	Dropped int
	// Stored counts total packets accepted.
	Stored int
}

// NewBuffer creates a buffer holding up to capacity packets. A zero or
// negative capacity means unbounded.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{capacity: capacity}
}

// Len returns the number of queued packets.
func (b *Buffer) Len() int { return len(b.queue) }

// Capacity returns the configured capacity (0 = unbounded).
func (b *Buffer) Capacity() int { return b.capacity }

// Push stores a packet, reporting false (and counting a drop) when full.
func (b *Buffer) Push(p StoredPacket) bool {
	if b.capacity > 0 && len(b.queue) >= b.capacity {
		b.Dropped++
		return false
	}
	b.queue = append(b.queue, p)
	b.Stored++
	return true
}

// Flush removes and returns every queued packet (FIFO order).
func (b *Buffer) Flush() []StoredPacket {
	out := b.queue
	b.queue = nil
	return out
}

// Gateway is one satellite acting as an IoT gateway.
//
// A Gateway's orbital source may be a raw propagator or a shared
// ephemeris view; position queries through either are goroutine-safe.
// The Buffer is not: campaign workers that push or flush packets must
// own their gateway exclusively. Read-only uses (BeaconTimes,
// GeometryAt, AltitudeAt) may share one gateway across workers.
type Gateway struct {
	NoradID int
	Name    string
	Src     orbit.StateSource
	Buffer  *Buffer

	// epoch anchors the beacon grid; cached so the hot beacon path does
	// not rebuild the element set per call.
	epoch time.Time

	// BeaconInterval is the gateway's beacon period.
	BeaconInterval time.Duration
	// AckTurnaround is the gap between decoding an uplink and transmitting
	// the ACK.
	AckTurnaround time.Duration
}

// NewGateway wraps an orbital state source — a raw SGP4 propagator or a
// shared ephemeris — as a gateway with the given buffer size.
func NewGateway(src orbit.StateSource, beaconInterval time.Duration, bufferCapacity int) *Gateway {
	els := src.Elements()
	return &Gateway{
		NoradID:        els.NoradID,
		Name:           els.Name,
		Src:            src,
		epoch:          els.Epoch,
		Buffer:         NewBuffer(bufferCapacity),
		BeaconInterval: beaconInterval,
		AckTurnaround:  500 * time.Millisecond,
	}
}

// String implements fmt.Stringer.
func (g *Gateway) String() string {
	return fmt.Sprintf("gateway %s (NORAD %d, buffer %d/%d)", g.Name, g.NoradID, g.Buffer.Len(), g.Buffer.Capacity())
}

// BeaconTimes returns the beacon emission instants within [start, end):
// a deterministic grid anchored at the satellite's epoch so that beacon
// phase is stable across passes.
func (g *Gateway) BeaconTimes(start, end time.Time) []time.Time {
	return g.AppendBeaconTimes(nil, start, end)
}

// AppendBeaconTimes appends the beacon emission instants within
// [start, end) to dst and returns the extended slice. Campaign loops that
// walk thousands of passes reuse one buffer (dst[:0]) so steady-state
// beacon enumeration performs zero allocations.
func (g *Gateway) AppendBeaconTimes(dst []time.Time, start, end time.Time) []time.Time {
	if !end.After(start) || g.BeaconInterval <= 0 {
		return dst
	}
	offset := start.Sub(g.epoch)
	// First beacon at or after start.
	n := offset / g.BeaconInterval
	first := g.epoch.Add(n * g.BeaconInterval)
	for first.Before(start) {
		first = first.Add(g.BeaconInterval)
	}
	for t := first; t.Before(end); t = t.Add(g.BeaconInterval) {
		dst = append(dst, t)
	}
	return dst
}

// GeometryAt returns the look geometry from a ground point to the gateway
// at time t.
func (g *Gateway) GeometryAt(site orbit.Geodetic, t time.Time) (orbit.LookAngles, error) {
	r, v, err := g.Src.PositionECEF(t)
	if err != nil {
		return orbit.LookAngles{}, err
	}
	return orbit.Look(site, r, v), nil
}

// AltitudeAt returns the satellite altitude at t.
func (g *Gateway) AltitudeAt(t time.Time) (float64, error) {
	r, _, err := g.Src.PositionECEF(t)
	if err != nil {
		return 0, err
	}
	return orbit.GeodeticFromECEF(r).Alt, nil
}
