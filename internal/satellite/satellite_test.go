package satellite

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/orbit"
)

var epoch = time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)

func testGateway(t *testing.T) *Gateway {
	t.Helper()
	c := constellation.Tianqi(epoch)
	prop, err := orbit.NewPropagator(c.Sats[0])
	if err != nil {
		t.Fatal(err)
	}
	return NewGateway(prop, c.BeaconInterval, 100)
}

func TestBufferFIFO(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 3; i++ {
		if !b.Push(StoredPacket{SeqID: uint64(i)}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if b.Len() != 3 || b.Stored != 3 {
		t.Errorf("len=%d stored=%d", b.Len(), b.Stored)
	}
	// Fourth push drops.
	if b.Push(StoredPacket{SeqID: 3}) {
		t.Error("over-capacity push accepted")
	}
	if b.Dropped != 1 {
		t.Errorf("dropped = %d", b.Dropped)
	}
	out := b.Flush()
	if len(out) != 3 || out[0].SeqID != 0 || out[2].SeqID != 2 {
		t.Errorf("flush = %v", out)
	}
	if b.Len() != 0 {
		t.Error("buffer not empty after flush")
	}
	// After flushing there is room again.
	if !b.Push(StoredPacket{SeqID: 9}) {
		t.Error("post-flush push rejected")
	}
}

func TestBufferUnbounded(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 1000; i++ {
		if !b.Push(StoredPacket{SeqID: uint64(i)}) {
			t.Fatal("unbounded buffer rejected a packet")
		}
	}
	if b.Dropped != 0 || b.Len() != 1000 {
		t.Errorf("dropped=%d len=%d", b.Dropped, b.Len())
	}
}

func TestBeaconTimesGrid(t *testing.T) {
	g := testGateway(t)
	start := epoch.Add(90 * time.Minute)
	end := start.Add(5 * time.Minute)
	times := g.BeaconTimes(start, end)
	// 5 min / 20 s = 15 beacons.
	if len(times) != 15 {
		t.Fatalf("beacons = %d, want 15", len(times))
	}
	for i, bt := range times {
		if bt.Before(start) || !bt.Before(end) {
			t.Errorf("beacon %d at %v outside window", i, bt)
		}
		// Grid is anchored at the epoch: offsets are exact multiples.
		if off := bt.Sub(epoch) % g.BeaconInterval; off != 0 {
			t.Errorf("beacon %d off-grid by %v", i, off)
		}
	}
}

func TestBeaconTimesStableAcrossCalls(t *testing.T) {
	// Querying overlapping windows must produce the same grid instants —
	// the property that makes effective-window measurements well defined.
	g := testGateway(t)
	a := g.BeaconTimes(epoch.Add(10*time.Minute), epoch.Add(20*time.Minute))
	b := g.BeaconTimes(epoch.Add(15*time.Minute), epoch.Add(25*time.Minute))
	seen := map[time.Time]bool{}
	for _, t1 := range a {
		seen[t1] = true
	}
	overlapCount := 0
	for _, t2 := range b {
		if t2.Before(epoch.Add(20 * time.Minute)) {
			overlapCount++
			if !seen[t2] {
				t.Fatalf("beacon %v in second query missing from first", t2)
			}
		}
	}
	if overlapCount == 0 {
		t.Fatal("no overlapping beacons to compare")
	}
}

func TestBeaconTimesDegenerate(t *testing.T) {
	g := testGateway(t)
	if got := g.BeaconTimes(epoch, epoch); got != nil {
		t.Error("empty window produced beacons")
	}
	g.BeaconInterval = 0
	if got := g.BeaconTimes(epoch, epoch.Add(time.Hour)); got != nil {
		t.Error("zero interval produced beacons")
	}
}

func TestGeometryAt(t *testing.T) {
	g := testGateway(t)
	site := orbit.NewGeodeticDeg(22.3, 114.2, 0)
	la, err := g.GeometryAt(site, epoch.Add(30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if la.RangeKm < 800 || la.RangeKm > 14000 {
		t.Errorf("range = %.0f km implausible", la.RangeKm)
	}
	alt, err := g.AltitudeAt(epoch.Add(30 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if alt < 800 || alt > 910 {
		t.Errorf("altitude = %.1f km, want Tianqi-A band", alt)
	}
}

func TestGatewayString(t *testing.T) {
	g := testGateway(t)
	if g.String() == "" || g.NoradID != 91000 {
		t.Errorf("gateway identity: %v", g)
	}
}
