package energy

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func TestProfilesMatchPaper(t *testing.T) {
	terr := TerrestrialProfile()
	// Fig. 10 values.
	if terr.Power(Tx) != 1630 || terr.Power(Rx) != 265 ||
		terr.Power(Standby) != 146 || terr.Power(Sleep) != 19.1 {
		t.Errorf("terrestrial profile %v deviates from Fig. 10", terr.PowerMW)
	}
	tq := TianqiProfile()
	// Fig. 6a: 2.2× transmit power.
	if ratio := tq.Power(Tx) / terr.Power(Tx); math.Abs(ratio-2.2) > 1e-9 {
		t.Errorf("Tx ratio = %v, want 2.2", ratio)
	}
	if tq.HasStandby {
		t.Error("Tianqi node must not have standby (§3.2)")
	}
	if !terr.HasStandby {
		t.Error("terrestrial node must have standby")
	}
	// Mode power ordering within each profile.
	for _, p := range []Profile{terr, tq} {
		if !(p.Power(Sleep) < p.Power(Rx) && p.Power(Rx) < p.Power(Tx)) {
			t.Errorf("%s power ordering broken", p.Name)
		}
	}
	if p := terr.Power(Mode(99)); p != 0 {
		t.Errorf("unknown mode power = %v", p)
	}
}

func TestModeString(t *testing.T) {
	if Sleep.String() != "sleep" || Standby.String() != "standby" ||
		Rx.String() != "rx" || Tx.String() != "tx" {
		t.Error("mode labels")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode label")
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(TerrestrialProfile(), t0)
	m.Transition(Tx, t0.Add(10*time.Second))    // 10 s sleep
	m.Transition(Rx, t0.Add(11*time.Second))    // 1 s tx
	m.Transition(Sleep, t0.Add(13*time.Second)) // 2 s rx
	m.Finish(t0.Add(20 * time.Second))          // 7 s sleep

	if got := m.TimeIn(Sleep); got != 17*time.Second {
		t.Errorf("sleep time = %v", got)
	}
	if got := m.TimeIn(Tx); got != time.Second {
		t.Errorf("tx time = %v", got)
	}
	if got := m.TimeIn(Rx); got != 2*time.Second {
		t.Errorf("rx time = %v", got)
	}
	wantE := 17*19.1 + 1*1630 + 2*265
	if got := m.TotalEnergyMJ(); math.Abs(got-wantE) > 1e-9 {
		t.Errorf("total energy = %v mJ, want %v", got, wantE)
	}
	if got := m.TotalTime(); got != 20*time.Second {
		t.Errorf("total time = %v", got)
	}
	wantAvg := wantE / 20
	if got := m.AveragePowerMW(); math.Abs(got-wantAvg) > 1e-9 {
		t.Errorf("avg power = %v", got)
	}
}

func TestMeterStandbyFallback(t *testing.T) {
	// A Tianqi node asked to standby must sleep instead.
	m := NewMeter(TianqiProfile(), t0)
	m.Transition(Standby, t0.Add(time.Second))
	if m.Mode() != Sleep {
		t.Errorf("mode after standby request = %v, want sleep", m.Mode())
	}
	// Terrestrial node keeps standby.
	m2 := NewMeter(TerrestrialProfile(), t0)
	m2.Transition(Standby, t0.Add(time.Second))
	if m2.Mode() != Standby {
		t.Errorf("terrestrial standby = %v", m2.Mode())
	}
}

func TestMeterOutOfOrderClamped(t *testing.T) {
	m := NewMeter(TerrestrialProfile(), t0)
	m.Transition(Tx, t0.Add(10*time.Second))
	m.Transition(Sleep, t0.Add(5*time.Second)) // goes backwards
	if m.TotalEnergyMJ() < 0 {
		t.Error("negative energy accumulated")
	}
	for mo := Sleep; mo < numModes; mo++ {
		if m.TimeIn(mo) < 0 {
			t.Errorf("negative time in %v", mo)
		}
	}
}

func TestBreakdownFractions(t *testing.T) {
	m := NewMeter(TerrestrialProfile(), t0)
	m.Transition(Tx, t0.Add(95*time.Second)) // 95 s sleep
	m.Finish(t0.Add(100 * time.Second))      // 5 s tx

	var timeSum, energySum float64
	bds := m.Breakdown()
	for _, b := range bds {
		timeSum += b.TimeFrac
		energySum += b.EnergyFrac
	}
	if math.Abs(timeSum-1) > 1e-9 || math.Abs(energySum-1) > 1e-9 {
		t.Errorf("fractions don't sum to 1: time=%v energy=%v", timeSum, energySum)
	}
	// The paper's Fig. 11 observation: sleep dominates time, Tx dominates
	// energy even at tiny duty cycle.
	if bds[Sleep].TimeFrac < 0.9 {
		t.Errorf("sleep time frac = %v", bds[Sleep].TimeFrac)
	}
	if bds[Tx].EnergyFrac < 0.7 {
		t.Errorf("tx energy frac = %v (want Tx-dominated)", bds[Tx].EnergyFrac)
	}
	if bds[Tx].AvgPowerMW != 1630 {
		t.Errorf("tx avg power = %v", bds[Tx].AvgPowerMW)
	}
}

func TestBatteryLifetime(t *testing.T) {
	b := DefaultBattery()
	if got := b.EnergyMWh(); math.Abs(got-18000) > 1e-9 {
		t.Errorf("5000 mAh @ 3.6 V = %v mWh, want 18000", got)
	}
	// 18 Wh at 25 mW = 720 h = 30 days.
	if got := b.LifetimeDays(25); math.Abs(got-30) > 1e-9 {
		t.Errorf("lifetime at 25 mW = %v days, want 30", got)
	}
	if b.Lifetime(0) != 0 || b.Lifetime(-5) != 0 {
		t.Error("non-positive draw must yield zero lifetime")
	}
}

func TestLifetimeRatioShape(t *testing.T) {
	// A Tianqi-style duty cycle (Rx hanging on waiting for passes, heavy
	// Tx) must drain far faster than a terrestrial duty cycle — the
	// paper's 48 vs 718 days, a ~15× ratio. Build one synthetic day each.
	day := 24 * time.Hour

	terr := NewMeter(TerrestrialProfile(), t0)
	cursor := t0
	// 48 packets/day: 57 ms Tx + 2 s Rx windows + 3 s standby each, rest sleep.
	for i := 0; i < 48; i++ {
		cursor = cursor.Add(29 * time.Minute)
		terr.Transition(Tx, cursor)
		cursor = cursor.Add(60 * time.Millisecond)
		terr.Transition(Rx, cursor)
		cursor = cursor.Add(2 * time.Second)
		terr.Transition(Standby, cursor)
		cursor = cursor.Add(3 * time.Second)
		terr.Transition(Sleep, cursor)
	}
	terr.Finish(t0.Add(day))

	tq := NewMeter(TianqiProfile(), t0)
	cursor = t0
	// Satellite node: for each of ~30 contact opportunities, Rx hangs on
	// ~25 min waiting + per-packet 1.6 s Tx bursts with retransmissions.
	for i := 0; i < 30; i++ {
		cursor = cursor.Add(20 * time.Minute)
		tq.Transition(Rx, cursor)
		cursor = cursor.Add(25 * time.Minute)
		tq.Transition(Tx, cursor)
		cursor = cursor.Add(3 * time.Second)
		tq.Transition(Sleep, cursor)
	}
	tq.Finish(t0.Add(day + time.Hour))

	b := DefaultBattery()
	terrDays := b.LifetimeDays(terr.AveragePowerMW())
	tqDays := b.LifetimeDays(tq.AveragePowerMW())
	ratio := terrDays / tqDays
	if ratio < 5 || ratio > 40 {
		t.Errorf("lifetime ratio = %.1f (terr %0.f d, sat %.0f d), want order ~15×", ratio, terrDays, tqDays)
	}
	if tqDays >= terrDays {
		t.Error("satellite node must not outlive terrestrial node")
	}
}
