// Package energy models IoT node power consumption: per-mode power
// profiles, a mode state machine that integrates energy over a simulated
// campaign, and battery-lifetime projection. The terrestrial profile uses
// the paper's measured values (Fig. 10: Tx 1630 mW, Rx 265 mW, Standby
// 146 mW, Sleep 19.1 mW); the Tianqi DtS profile applies the paper's
// measured 2.2× transmit-power ratio (Fig. 6a).
package energy

import (
	"encoding/json"
	"fmt"
	"time"
)

// Mode is a radio/MCU operating mode.
type Mode int

// Operating modes. Satellite IoT nodes implement only Sleep, Rx and Tx
// (§3.2); terrestrial nodes add Standby.
const (
	Sleep Mode = iota
	Standby
	Rx
	Tx
	numModes
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Sleep:
		return "sleep"
	case Standby:
		return "standby"
	case Rx:
		return "rx"
	case Tx:
		return "tx"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Profile maps modes to power draw in milliwatts.
type Profile struct {
	Name    string
	PowerMW [numModes]float64
	// HasStandby reports whether the device implements a standby mode
	// between sleep and rx (terrestrial nodes do, Tianqi nodes do not —
	// §3.2 / Appendix D).
	HasStandby bool
}

// TerrestrialProfile returns the measured terrestrial LoRaWAN node profile
// (paper Fig. 10).
func TerrestrialProfile() Profile {
	return Profile{
		Name:       "terrestrial LoRa node",
		PowerMW:    [numModes]float64{Sleep: 19.1, Standby: 146, Rx: 265, Tx: 1630},
		HasStandby: true,
	}
}

// TianqiProfile returns the Tianqi satellite IoT node profile: transmit
// draws 2.2× the terrestrial Tx power (Fig. 6a) because closing a DtS link
// needs maximum output power plus a boost converter; Rx is slightly higher
// than terrestrial (satellite monitoring keeps broader front-end gain); no
// standby mode exists.
func TianqiProfile() Profile {
	return Profile{
		Name:       "Tianqi satellite IoT node",
		PowerMW:    [numModes]float64{Sleep: 23.0, Standby: 0, Rx: 295, Tx: 1630 * 2.2},
		HasStandby: false,
	}
}

// Power returns the draw of mode m in mW.
func (p Profile) Power(m Mode) float64 {
	if m < 0 || m >= numModes {
		return 0
	}
	return p.PowerMW[m]
}

// Meter integrates time and energy per mode as a device steps through its
// duty cycle — the software equivalent of the paper's Air9000 power meter.
type Meter struct {
	profile Profile
	mode    Mode
	since   time.Time

	timeIn   [numModes]time.Duration
	energyMJ [numModes]float64 // millijoules = mW · s
}

// NewMeter starts metering in Sleep at the given time.
func NewMeter(p Profile, start time.Time) *Meter {
	return &Meter{profile: p, mode: Sleep, since: start}
}

// Mode returns the current mode.
func (m *Meter) Mode() Mode { return m.mode }

// Transition switches to mode next at time at, accumulating the elapsed
// interval in the old mode. Transitions must be monotonically ordered in
// time; out-of-order calls are clamped to zero duration.
func (m *Meter) Transition(next Mode, at time.Time) {
	if !m.profile.HasStandby && next == Standby {
		// Devices without standby fall back to sleep.
		next = Sleep
	}
	dt := at.Sub(m.since)
	if dt > 0 {
		m.timeIn[m.mode] += dt
		m.energyMJ[m.mode] += m.profile.Power(m.mode) * dt.Seconds()
		m.since = at
	} else if dt == 0 {
		// exact same instant: pure mode switch
	} else {
		// Clamp: never integrate negative time.
		m.since = at
	}
	m.mode = next
}

// Finish closes the last interval at time at.
func (m *Meter) Finish(at time.Time) { m.Transition(m.mode, at) }

// meterJSON is the serialized form of a Meter. The meter's fields stay
// unexported (its invariants live in Transition), so API serialization
// goes through an explicit codec instead of silently flattening to "{}".
type meterJSON struct {
	Profile  Profile                 `json:"profile"`
	Mode     Mode                    `json:"mode"`
	Since    time.Time               `json:"since"`
	TimeIn   [numModes]time.Duration `json:"time_in"`
	EnergyMJ [numModes]float64       `json:"energy_mj"`
}

// MarshalJSON implements json.Marshaler, capturing the full meter state so
// a round trip is lossless.
func (m *Meter) MarshalJSON() ([]byte, error) {
	return json.Marshal(meterJSON{
		Profile:  m.profile,
		Mode:     m.mode,
		Since:    m.since,
		TimeIn:   m.timeIn,
		EnergyMJ: m.energyMJ,
	})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of MarshalJSON.
func (m *Meter) UnmarshalJSON(data []byte) error {
	var v meterJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	m.profile = v.Profile
	m.mode = v.Mode
	m.since = v.Since
	m.timeIn = v.TimeIn
	m.energyMJ = v.EnergyMJ
	return nil
}

// TimeIn returns the accumulated time in mode mo.
func (m *Meter) TimeIn(mo Mode) time.Duration { return m.timeIn[mo] }

// EnergyMJ returns accumulated energy in millijoules for mode mo.
func (m *Meter) EnergyMJ(mo Mode) float64 { return m.energyMJ[mo] }

// TotalEnergyMJ returns the total accumulated energy.
func (m *Meter) TotalEnergyMJ() float64 {
	var sum float64
	for _, e := range m.energyMJ {
		sum += e
	}
	return sum
}

// TotalTime returns the total metered time.
func (m *Meter) TotalTime() time.Duration {
	var sum time.Duration
	for _, t := range m.timeIn {
		sum += t
	}
	return sum
}

// AveragePowerMW returns total energy over total time.
func (m *Meter) AveragePowerMW() float64 {
	t := m.TotalTime().Seconds()
	if t <= 0 {
		return 0
	}
	return m.TotalEnergyMJ() / t
}

// Breakdown is a per-mode share of time and energy (fractions in [0,1]).
type Breakdown struct {
	Mode       Mode
	TimeFrac   float64
	EnergyFrac float64
	Time       time.Duration
	EnergyMJ   float64
	AvgPowerMW float64
}

// Breakdown returns the per-mode shares, in mode order.
func (m *Meter) Breakdown() []Breakdown {
	totalT := m.TotalTime().Seconds()
	totalE := m.TotalEnergyMJ()
	out := make([]Breakdown, 0, int(numModes))
	for mo := Sleep; mo < numModes; mo++ {
		b := Breakdown{
			Mode:     mo,
			Time:     m.timeIn[mo],
			EnergyMJ: m.energyMJ[mo],
		}
		if totalT > 0 {
			b.TimeFrac = m.timeIn[mo].Seconds() / totalT
		}
		if totalE > 0 {
			b.EnergyFrac = m.energyMJ[mo] / totalE
		}
		if s := m.timeIn[mo].Seconds(); s > 0 {
			b.AvgPowerMW = m.energyMJ[mo] / s
		}
		out = append(out, b)
	}
	return out
}

// Battery projects device lifetime from a capacity and an average draw.
type Battery struct {
	CapacityMAh float64
	VoltageV    float64
}

// DefaultBattery is the paper's quoted pack (5,000 mAh class) at a LiSOCl2
// cell voltage of 3.6 V.
func DefaultBattery() Battery { return Battery{CapacityMAh: 5000, VoltageV: 3.6} }

// EnergyMWh returns the battery's energy content in milliwatt-hours.
func (b Battery) EnergyMWh() float64 { return b.CapacityMAh * b.VoltageV }

// Lifetime returns how long the battery sustains the given average draw.
func (b Battery) Lifetime(avgPowerMW float64) time.Duration {
	if avgPowerMW <= 0 {
		return 0
	}
	hours := b.EnergyMWh() / avgPowerMW
	return time.Duration(hours * float64(time.Hour))
}

// LifetimeDays returns Lifetime in days.
func (b Battery) LifetimeDays(avgPowerMW float64) float64 {
	return b.Lifetime(avgPowerMW).Hours() / 24
}
