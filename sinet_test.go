package sinet_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	sinet "github.com/sinet-io/sinet"
)

var epoch = time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)

func TestFacadeOrbitPath(t *testing.T) {
	// The full public path: TLE → propagator → pass prediction.
	tq := sinet.Tianqi(epoch)
	card := tq.Sats[0].TLE().Format()
	tle, err := sinet.ParseTLE(card)
	if err != nil {
		t.Fatalf("ParseTLE on generated card: %v", err)
	}
	prop, err := sinet.NewPropagatorFromTLE(tle)
	if err != nil {
		t.Fatal(err)
	}
	pp := sinet.NewPassPredictor(prop)
	hk := sinet.LatLon(22.3, 114.2, 0)
	passes := pp.Passes(hk, epoch, epoch.Add(24*time.Hour), 0)
	if len(passes) == 0 {
		t.Fatal("no passes from the public API")
	}
	if passes[0].Duration() <= 0 {
		t.Error("non-positive pass duration")
	}
}

func TestFacadeConstellations(t *testing.T) {
	all := sinet.AllConstellations(epoch)
	if len(all) != 4 {
		t.Fatalf("constellations = %d", len(all))
	}
	if all[0].Size() != 22 || all[1].Size() != 3 || all[2].Size() != 9 || all[3].Size() != 5 {
		t.Error("fleet sizes deviate from Table 3")
	}
	if sinet.TianqiSubset(epoch, 12).Size() != 12 {
		t.Error("subset size")
	}
	if sinet.FootprintKm2(500, 0) <= 0 {
		t.Error("footprint")
	}
}

func TestFacadePassiveCampaign(t *testing.T) {
	hk, ok := sinet.SiteByCode("HK")
	if !ok {
		t.Fatal("HK missing")
	}
	res, err := sinet.RunPassive(sinet.PassiveConfig{
		Seed:           1,
		Start:          epoch,
		Days:           1,
		Sites:          []sinet.Site{hk},
		Constellations: []sinet.Constellation{sinet.FOSSA(epoch)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contacts) == 0 {
		t.Fatal("no contacts via facade")
	}
	sh := res.Shrinkage("FOSSA", "HK")
	if sh.Contacts == 0 {
		t.Error("no covered contacts")
	}
}

func TestFacadeActiveAndEnergy(t *testing.T) {
	sat, err := sinet.RunActive(sinet.ActiveConfig{
		Seed: 1, Start: epoch, Days: 1, Policy: sinet.DefaultRetxPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	terr, err := sinet.RunTerrestrial(sinet.TerrestrialConfig{Seed: 1, Start: epoch, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	ec := sinet.CompareEnergy(sat, terr, sinet.DefaultBattery())
	if ec.PowerRatio <= 1 {
		t.Errorf("power ratio %v", ec.PowerRatio)
	}
	if sat.Reliability() <= 0 || terr.Reliability() <= 0 {
		t.Error("zero reliability via facade")
	}
}

func TestFacadeCost(t *testing.T) {
	sat := sinet.PaperAgricultureSatellite()
	terr := sinet.PaperAgricultureTerrestrial()
	if sat.MonthlyPerNode() <= terr.MonthlyPerNode() {
		t.Error("cost model shape wrong via facade")
	}
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	d := &sinet.Dataset{}
	d.Add(sinet.TraceRecord{At: epoch, Site: "HK", Constellation: "Tianqi", RSSIDBm: -128})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sinet.ReadTracesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 || back.Records[0].Site != "HK" {
		t.Error("CSV round trip via facade failed")
	}
}

func TestFacadeExperimentRunner(t *testing.T) {
	var out strings.Builder
	r := sinet.NewExperimentRunner(sinet.QuickScale(), &out)
	if _, err := r.Table2(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 2") {
		t.Error("runner output missing")
	}
	if sinet.Version == "" {
		t.Error("version empty")
	}
}

func TestFacadeWeatherAndAntennas(t *testing.T) {
	if sinet.Sunny.String() != "sunny" || sinet.Stormy.String() != "stormy" {
		t.Error("weather aliases broken")
	}
	if sinet.FiveEighthsWave.GainDB <= sinet.QuarterWave.GainDB {
		t.Error("antenna aliases broken")
	}
	if sinet.NoRetxPolicy().MaxAttempts() != 1 {
		t.Error("policy aliases broken")
	}
	_ = sinet.ConstantWeather{State: sinet.Rainy}
	if sinet.YunnanPlantation().LatDeg() < 20 || sinet.YunnanPlantation().LatDeg() > 25 {
		t.Error("Yunnan location implausible")
	}
	if len(sinet.PaperSites()) != 8 {
		t.Error("paper sites")
	}
}
