package sinet_test

import (
	"fmt"
	"time"

	sinet "github.com/sinet-io/sinet"
)

// ExampleParseTLE parses a historical ISS element set and reads its
// orbital parameters.
func ExampleParseTLE() {
	tle, err := sinet.ParseTLE(`ISS (ZARYA)
1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927
2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	fmt.Printf("NORAD %d, inclination %.4f°, %.4f rev/day\n",
		tle.NoradID, tle.InclinationDeg, tle.MeanMotion)
	// Output:
	// NORAD 25544, inclination 51.6416°, 15.7213 rev/day
}

// ExampleFootprintKm2 computes a LEO satellite's coverage area, the
// quantity behind Table 3's footprint column.
func ExampleFootprintKm2() {
	horizonCap := sinet.FootprintKm2(550, 0)
	masked := sinet.FootprintKm2(550, 5*3.14159265/180)
	fmt.Printf("550 km footprint: %.2e km² at 0°, %.2e km² at 5°\n", horizonCap, masked)
	// Output:
	// 550 km footprint: 2.03e+07 km² at 0°, 1.32e+07 km² at 5°
}

// ExamplePaperAgricultureSatellite reproduces the Table 2 cost arithmetic.
func ExamplePaperAgricultureSatellite() {
	sat := sinet.PaperAgricultureSatellite()
	terr := sinet.PaperAgricultureTerrestrial()
	fmt.Printf("satellite: capital %v, per-node %v/month\n", sat.CapitalCost(), sat.MonthlyPerNode())
	fmt.Printf("terrestrial: capital %v, total %v/month\n", terr.CapitalCost(), terr.MonthlyOperationalCost())
	// Output:
	// satellite: capital $660.00, per-node $23.76/month
	// terrestrial: capital $762.00, total $14.70/month
}

// ExampleTianqi shows the synthetic Table 3 catalog.
func ExampleTianqi() {
	epoch := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	tq := sinet.Tianqi(epoch)
	fmt.Printf("%s: %d satellites on %.2f MHz\n", tq.Name, tq.Size(), tq.FreqMHz)
	fmt.Printf("first satellite: %s\n", tq.Sats[0].Name)
	// Output:
	// Tianqi: 22 satellites on 400.45 MHz
	// first satellite: TIANQI-A-01
}

// ExampleNewPassPredictor predicts contact windows — the deterministic
// geometry underlying every availability analysis.
func ExampleNewPassPredictor() {
	epoch := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	prop, err := sinet.NewPropagator(sinet.FOSSA(epoch).Sats[0])
	if err != nil {
		fmt.Println(err)
		return
	}
	hk := sinet.LatLon(22.3193, 114.1694, 0)
	passes := sinet.NewPassPredictor(prop).Passes(hk, epoch, epoch.Add(24*time.Hour), 0)
	fmt.Printf("passes over Hong Kong in 24 h: %d\n", len(passes))
	// Output:
	// passes over Hong Kong in 24 h: 4
}
