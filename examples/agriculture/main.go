// Agriculture reproduces the paper's §3.2 case study: three Tianqi
// satellite IoT nodes on a Yunnan coffee plantation versus a terrestrial
// LoRaWAN deployment serving the same sensors, compared on reliability,
// latency, energy and cost.
package main

import (
	"fmt"
	"log"
	"time"

	sinet "github.com/sinet-io/sinet"
)

func main() {
	log.SetFlags(0)
	const days = 7
	fmt.Printf("coffee-plantation case study (%d days, 3 nodes, 20 B every 30 min)\n", days)
	fmt.Printf("plantation location: %v\n\n", sinet.YunnanPlantation())

	// Satellite system: with and without DtS retransmissions (Fig. 5a).
	satNoRetx, err := sinet.RunActive(sinet.ActiveConfig{
		Seed: 42, Days: days, Policy: sinet.NoRetxPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	satRetx, err := sinet.RunActive(sinet.ActiveConfig{
		Seed: 42, Days: days, Policy: sinet.DefaultRetxPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	terr, err := sinet.RunTerrestrial(sinet.TerrestrialConfig{Seed: 42, Days: days})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reliability (Fig. 5a):")
	fmt.Printf("  terrestrial LoRaWAN      %.1f%%\n", terr.Reliability()*100)
	fmt.Printf("  Tianqi, no retx          %.1f%%   (paper: 91%%)\n", satNoRetx.Reliability()*100)
	fmt.Printf("  Tianqi, 5 retx           %.1f%%   (paper: 96%%)\n", satRetx.Reliability()*100)

	lb := satRetx.Latency()
	terrLat, _ := terr.MeanLatency()
	fmt.Println("\nlatency (Fig. 5c/5d):")
	fmt.Printf("  terrestrial mean         %v\n", terrLat.Round(time.Millisecond))
	fmt.Printf("  satellite mean           %v   (%.0fx terrestrial; paper: 643.6x)\n",
		lb.Total.Round(time.Second), float64(lb.Total)/float64(terrLat))
	fmt.Printf("  — waiting for pass       %v   (paper: 55.2 min)\n", lb.Wait.Round(time.Second))
	fmt.Printf("  — DtS (re)transmissions  %v   (paper: 10.4 min)\n", lb.DtS.Round(time.Second))
	fmt.Printf("  — delivery               %v   (paper: 56.9 min)\n", lb.Delivery.Round(time.Second))

	fmt.Println("\nretransmissions (Fig. 5b):")
	fmt.Printf("  mean DtS retx            %.2f\n", satRetx.MeanRetx())
	fmt.Printf("  packets with no retx     %.0f%%   (paper: ~50%%)\n", satRetx.ZeroRetxFraction()*100)
	fmt.Printf("  ACK losses               %d of %d uplinks (cause of unnecessary retx)\n",
		satRetx.MacStats.AckLosses, satRetx.MacStats.UplinkSuccesses)

	ec := sinet.CompareEnergy(satRetx, terr, sinet.DefaultBattery())
	fmt.Println("\nenergy (Fig. 6):")
	fmt.Printf("  satellite node draw      %.1f mW  → %.0f days on the pack\n", ec.SatAvgPowerMW, ec.SatLifetimeDays)
	fmt.Printf("  terrestrial node draw    %.1f mW  → %.0f days\n", ec.TerrAvgPowerMW, ec.TerrLifetimeDays)
	fmt.Printf("  drain ratio              %.1fx   (paper: 14.9x)\n", ec.PowerRatio)

	sat := sinet.PaperAgricultureSatellite()
	terrCost := sinet.PaperAgricultureTerrestrial()
	fmt.Println("\ncost (Table 2):")
	fmt.Printf("  satellite: capital %v, %v per node-month\n", sat.CapitalCost(), sat.MonthlyPerNode())
	fmt.Printf("  terrestrial: capital %v, %v per month total\n", terrCost.CapitalCost(), terrCost.MonthlyOperationalCost())
	fmt.Println("\nsatellite IoT trades gateway capex for per-packet opex, latency and battery life —")
	fmt.Println("worth it exactly where no terrestrial backhaul exists (the paper's conclusion).")
}
