// Quickstart walks the SINet public API end to end: build a constellation,
// predict passes over a site, run a one-day passive campaign, and inspect
// the availability gap the paper reports.
package main

import (
	"fmt"
	"log"
	"time"

	sinet "github.com/sinet-io/sinet"
)

func main() {
	log.SetFlags(0)
	epoch := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)

	// 1. A constellation from the paper's Table 3 and its orbits.
	tianqi := sinet.Tianqi(epoch)
	fmt.Printf("constellation: %v (mean altitude %.0f km)\n", tianqi, tianqi.MeanAltitudeKm())

	// 2. Predict today's passes of its first satellite over Hong Kong.
	prop, err := sinet.NewPropagator(tianqi.Sats[0])
	if err != nil {
		log.Fatal(err)
	}
	hk := sinet.LatLon(22.3193, 114.1694, 0)
	passes := sinet.NewPassPredictor(prop).Passes(hk, epoch, epoch.Add(24*time.Hour), 0)
	fmt.Printf("\n%s passes over Hong Kong in 24 h: %d\n", tianqi.Sats[0].Name, len(passes))
	for _, p := range passes {
		fmt.Printf("  AOS %s  dur %-7s maxEl %5.1f°\n",
			p.AOS.Format("15:04:05"), p.Duration().Round(time.Second), p.MaxElevationDeg())
	}

	// 3. A TLE round trip, exactly as you would feed CelesTrak data in.
	card := tianqi.Sats[0].TLE().Format()
	fmt.Printf("\ngenerated TLE card:\n%s\n", card)
	if _, err := sinet.ParseTLE(card); err != nil {
		log.Fatalf("round trip failed: %v", err)
	}

	// 4. A one-day passive measurement campaign at that site.
	site, _ := sinet.SiteByCode("HK")
	res, err := sinet.RunPassive(sinet.PassiveConfig{
		Seed:           42,
		Start:          epoch,
		Days:           1,
		Sites:          []sinet.Site{site},
		Constellations: []sinet.Constellation{tianqi},
	})
	if err != nil {
		log.Fatal(err)
	}

	sh := res.Shrinkage("Tianqi", "HK")
	fmt.Printf("campaign: %d beacons received over %d contact windows\n", res.Dataset.Len(), len(res.Contacts))
	fmt.Printf("mean contact window: theoretical %v → effective %v (shrink %.1f%%)\n",
		sh.MeanTheoretical.Round(time.Second), sh.MeanEffective.Round(time.Second), sh.ShrinkFraction*100)
	fmt.Printf("daily availability: theoretical %.1f h → effective %.1f h\n",
		res.TheoreticalDailyDuration("Tianqi", "HK").Hours(),
		res.EffectiveDailyDuration("Tianqi", "HK").Hours())
	fmt.Println("\nthe paper's headline: effective DtS service time is <20% of the TLE prediction.")
}
