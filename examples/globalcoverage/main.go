// Globalcoverage reproduces the paper's §3.1 passive study: ground
// stations on four continents listening to four LEO IoT constellations,
// measuring availability, effective contact windows and beacon losses.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	sinet "github.com/sinet-io/sinet"
)

func main() {
	log.SetFlags(0)
	days := flag.Int("days", 3, "campaign length, days")
	flag.Parse()

	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	fmt.Printf("global passive campaign: 4 continents, 4 constellations, %d days\n\n", *days)

	res, err := sinet.RunPassive(sinet.PassiveConfig{
		Seed:  42,
		Start: start,
		Days:  *days,
		// Defaults: the four continent sites and all four constellations.
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d beacons captured across %d contact windows\n\n", res.Dataset.Len(), len(res.Contacts))

	fmt.Printf("%-8s %-5s %10s %10s %9s %9s %8s\n",
		"CONST", "SITE", "THEO/day", "EFF/day", "SHRINK", "LOSS", "TRACES")
	for _, cons := range []string{"Tianqi", "FOSSA", "PICO", "CSTP"} {
		for _, site := range []string{"HK", "SYD", "LDN", "PGH"} {
			theo := res.TheoreticalDailyDuration(cons, site)
			eff := res.EffectiveDailyDuration(cons, site)
			sh := res.Shrinkage(cons, site)
			traces := res.Dataset.ByConstellation(cons).BySite(site).Len()
			fmt.Printf("%-8s %-5s %10s %10s %8.1f%% %8.1f%% %8d\n",
				cons, site,
				theo.Round(time.Minute), eff.Round(time.Minute),
				sh.ShrinkFraction*100, res.OverallBeaconLoss(cons)*100, traces)
		}
	}

	// Where in the window do receptions land? (Fig. 9)
	wp := res.WindowPositions("")
	fmt.Printf("\nreceptions in the middle 30-70%% of windows: %.1f%% (paper: 70.4%%)\n", wp.MiddleFraction*100)

	// Distances (Fig. 8).
	if cdf, err := res.DistanceCDF("Tianqi"); err == nil {
		fmt.Printf("Tianqi slant ranges: p10 %.0f km, median %.0f km, p90 %.0f km (paper: 80%% in 1100-3500 km)\n",
			cdf.Quantile(0.1), cdf.Quantile(0.5), cdf.Quantile(0.9))
	}

	// Signal strengths (Fig. 3b).
	s := res.RSSISummary("")
	fmt.Printf("RSSI: mean %.1f dBm, range %.1f..%.1f dBm (paper: -140..-110 dBm)\n", s.Mean, s.Min, s.Max)

	// How does theoretical coverage vary with latitude? (the geometric
	// bound behind "connectivity anywhere")
	fmt.Println("\nTianqi theoretical coverage by latitude (1 day):")
	revisit, err := sinet.RevisitAnalysis(sinet.Tianqi(start), []float64{0, 25, 50, 75}, start, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range revisit {
		fmt.Printf("  %v\n", r)
	}

	fmt.Println("\ntakeaway: constellations are visible for hours per day, but the usable")
	fmt.Println("service time collapses to a fraction — satellite IoT is intermittent by nature.")
}
