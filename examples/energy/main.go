// Energy reproduces the paper's battery study (Fig. 6, 10, 11) and then
// evaluates the optimization the paper calls for: letting the node sleep
// between transmission bursts instead of hanging on in Rx.
package main

import (
	"fmt"
	"log"

	sinet "github.com/sinet-io/sinet"
)

func main() {
	log.SetFlags(0)
	const days = 5

	stock, err := sinet.RunActive(sinet.ActiveConfig{
		Seed: 42, Days: days, Policy: sinet.DefaultRetxPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := sinet.RunActive(sinet.ActiveConfig{
		Seed: 42, Days: days, Policy: sinet.DefaultRetxPolicy(),
		SleepWhenIdle: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	terr, err := sinet.RunTerrestrial(sinet.TerrestrialConfig{Seed: 42, Days: days})
	if err != nil {
		log.Fatal(err)
	}

	battery := sinet.DefaultBattery()
	ecStock := sinet.CompareEnergy(stock, terr, battery)
	ecOpt := sinet.CompareEnergy(optimized, terr, battery)

	fmt.Printf("battery: %.0f mAh @ %.1f V = %.0f mWh\n\n", battery.CapacityMAh, battery.VoltageV, battery.EnergyMWh())

	fmt.Println("stock Tianqi node (paper behaviour — Rx hangs on waiting for passes):")
	for _, b := range ecStock.SatBreakdown {
		fmt.Printf("  %-8s power %7.1f mW   time %5.1f%%   energy %5.1f%%\n",
			b.Mode, b.AvgPowerMW, b.TimeFrac*100, b.EnergyFrac*100)
	}
	fmt.Printf("  average draw %.1f mW → lifetime %.1f days\n\n", ecStock.SatAvgPowerMW, ecStock.SatLifetimeDays)

	fmt.Println("terrestrial LoRaWAN node (Fig. 10/11):")
	for _, b := range ecStock.TerrBreakdown {
		fmt.Printf("  %-8s power %7.1f mW   time %5.1f%%   energy %5.1f%%\n",
			b.Mode, b.AvgPowerMW, b.TimeFrac*100, b.EnergyFrac*100)
	}
	fmt.Printf("  average draw %.1f mW → lifetime %.1f days\n\n", ecStock.TerrAvgPowerMW, ecStock.TerrLifetimeDays)

	fmt.Printf("drain ratio stock vs terrestrial: %.1fx (paper: 14.9x)\n\n", ecStock.PowerRatio)

	fmt.Println("with the sleep-when-idle optimization the paper calls for:")
	fmt.Printf("  average draw %.1f mW → lifetime %.1f days (%.1fx better than stock)\n",
		ecOpt.SatAvgPowerMW, ecOpt.SatLifetimeDays, ecStock.SatAvgPowerMW/ecOpt.SatAvgPowerMW)
	fmt.Printf("  reliability impact: %.1f%% vs %.1f%% stock\n",
		optimized.Reliability()*100, stock.Reliability()*100)

	fmt.Println("\nthe bottleneck is exactly the paper's: the Rx radio hanging on for")
	fmt.Println("satellite passes dominates the budget, not the 2.2x transmit power.")
}
