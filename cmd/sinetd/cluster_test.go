package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/service"
)

// clusterSpec is the campaign the cluster smoke serves: eight sites
// drive eight "contacts" units, so at -shard-threshold 2 the coordinator
// splits it across both workers, and each unit is a few hundred
// milliseconds of work — a wide enough window to SIGKILL a worker with
// its shard provably mid-flight.
const clusterSpec = `{
  "kind": "passive",
  "passive": {"seed": 7, "days": 30, "sites": ["HK", "SYD", "LDN", "PGH", "SH", "GZ", "NC", "YC"], "constellations": ["Tianqi"]}
}`

// TestClusterKillWorkerServesByteIdenticalResult is the end-to-end
// cluster drill: start two real sinetd workers and a real coordinator,
// submit a campaign big enough to shard across both, SIGKILL a worker
// while it is computing its shard, and require the finished job — its
// shard failed over to the survivor — to serve bytes identical to an
// uninterrupted direct library run.
func TestClusterKillWorkerServesByteIdenticalResult(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons and runs a one-month campaign")
	}
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGKILL")
	}

	var workers []*exec.Cmd
	var workerAddrs []string
	for i := 0; i < 2; i++ {
		cmd, addr := startProc(t, "-addr 127.0.0.1:0 -workers 1 -cache-bytes 0")
		workers = append(workers, cmd)
		workerAddrs = append(workerAddrs, addr)
		defer func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}()
	}
	peers := "http://" + workerAddrs[0] + ",http://" + workerAddrs[1]
	coord, coordAddr := startProc(t,
		"-addr 127.0.0.1:0 -coordinator -peers "+peers+" -shard-threshold 2 -cache-bytes 0")
	defer func() {
		_ = coord.Process.Kill()
		_ = coord.Wait()
	}()
	base := "http://" + coordAddr

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(clusterSpec))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := decodeInto(resp, http.StatusAccepted, &submitted); err != nil {
		t.Fatal(err)
	}

	// Find a worker with a shard actually running, then kill it cold.
	victim := -1
	deadline := time.Now().Add(time.Minute)
	for victim < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no worker ever reported a running shard")
		}
		for i, addr := range workerAddrs {
			r, err := http.Get("http://" + addr + "/v1/stats")
			if err != nil {
				continue
			}
			var stats struct {
				JobsByState map[string]int `json:"jobs_by_state"`
			}
			if decodeInto(r, http.StatusOK, &stats) == nil && stats.JobsByState["running"] > 0 {
				victim = i
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := workers[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = workers[victim].Wait()

	// The campaign must still finish: the dead worker's shard fails over
	// to the survivor through the ring.
	deadline = time.Now().Add(3 * time.Minute)
	for {
		r, err := http.Get(base + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := decodeInto(r, http.StatusOK, &view); err != nil {
			t.Fatal(err)
		}
		if view.State == "done" {
			break
		}
		if view.State == "failed" || view.State == "canceled" {
			t.Fatalf("sharded job ended %s after worker kill: %s", view.State, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sharded job still %s 3m after worker kill", view.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
	r, err := http.Get(base + "/v1/jobs/" + submitted.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	served, err := readAll(r, http.StatusOK)
	if err != nil {
		t.Fatal(err)
	}

	// Golden: the same campaign straight through the library — no
	// daemons, no shards, no kill.
	var spec service.JobSpec
	if err := json.Unmarshal([]byte(clusterSpec), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	direct, err := service.Run(context.Background(), &spec, service.RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := service.MarshalResult(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, golden) {
		t.Fatalf("cluster result (%d bytes) differs from direct run (%d bytes)", len(served), len(golden))
	}

	// The scatter and the failover are visible on the coordinator's
	// cluster metrics.
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := readAll(mr, http.StatusOK)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte("sinet_cluster_shard_jobs_total 1")) {
		t.Fatal("metrics missing sinet_cluster_shard_jobs_total 1 after the sharded campaign")
	}
	if bytes.Contains(metrics, []byte("sinet_cluster_failovers_total 0")) {
		t.Fatal("metrics still report zero failovers after the worker kill")
	}

	// Trace smoke: the stitched timeline must tell the whole story under
	// ONE trace ID — coordinator-side spans, worker-side spans, and the
	// resubmission of the killed worker's shard (a shard.attempt span
	// with attempt >= 2). The victim's own spans died with its process;
	// the survivor contributes the shard reruns.
	tr, err := http.Get(base + "/v1/jobs/" + submitted.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceRaw, err := readAll(tr, http.StatusOK)
	if err != nil {
		t.Fatal(err)
	}
	if out := os.Getenv("SINET_TRACE_OUT"); out != "" {
		if werr := os.WriteFile(out, traceRaw, 0o644); werr != nil {
			t.Logf("could not write trace artifact to %s: %v", out, werr)
		}
	}
	var jt struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
			Service string `json:"service"`
			Attrs   []struct {
				Key   string `json:"key"`
				Value string `json:"value"`
			} `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(traceRaw, &jt); err != nil {
		t.Fatalf("decode stitched trace %s: %v", traceRaw, err)
	}
	if jt.TraceID == "" {
		t.Fatalf("stitched trace has no trace ID: %s", traceRaw)
	}
	coordSpans, workerSpans, resubmitted := 0, 0, false
	for _, sp := range jt.Spans {
		if sp.TraceID != jt.TraceID {
			t.Fatalf("span %s/%s on trace %s; every span must share %s", sp.Service, sp.Name, sp.TraceID, jt.TraceID)
		}
		switch {
		case sp.Service == "coordinator":
			coordSpans++
		case strings.HasPrefix(sp.Service, "worker:"):
			workerSpans++
		}
		if sp.Name == "shard.attempt" {
			for _, a := range sp.Attrs {
				if a.Key == "attempt" {
					if n, perr := strconv.Atoi(a.Value); perr == nil && n >= 2 {
						resubmitted = true
					}
				}
			}
		}
	}
	if coordSpans == 0 {
		t.Errorf("stitched trace has no coordinator spans: %s", traceRaw)
	}
	if workerSpans < 2 {
		t.Errorf("stitched trace has %d worker spans, want >= 2: %s", workerSpans, traceRaw)
	}
	if !resubmitted {
		t.Errorf("no shard.attempt span with attempt >= 2 after the worker kill: %s", traceRaw)
	}
}
