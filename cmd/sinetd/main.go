// Command sinetd serves measurement campaigns over HTTP: submit passive,
// active, coverage or backhaul campaign specs as JSON jobs, follow their
// progress over SSE, and fetch content-addressed, cached results.
//
// Usage:
//
//	sinetd [-addr :8470] [-workers N] [-queue 64] [-cache-bytes 268435456]
//	       [-log-format text|json] [-pprof]
//	       [-journal-dir DIR] [-job-deadline 0] [-max-retries 0] [-heartbeat-timeout 0]
//	sinetd -smoke   # self-check: serve on a random port, submit a small
//	                # job over HTTP, diff against the direct library call
//
// The API (see DESIGN.md "Serving architecture" and "Observability"):
//
//	POST   /v1/jobs             GET /v1/jobs/{id}         GET /v1/jobs/{id}/result
//	DELETE /v1/jobs/{id}        GET /v1/jobs/{id}/events  GET /v1/stats  GET /healthz
//	GET    /metrics             GET /debug/pprof/* (with -pprof)
//
// Logs are structured (log/slog) on stderr; -log-format json emits one
// JSON object per line for log shippers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("sinetd exiting", "error", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's structured logger in the requested
// format. The text handler is for humans at a terminal; json is one
// object per line for shippers.
func newLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
}

// run parses arguments and serves (or self-checks) until shutdown. It is
// the single exit path: every failure returns an error instead of exiting
// mid-flight.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sinetd", flag.ContinueOnError)
	addr := fs.String("addr", ":8470", "listen address")
	workers := fs.Int("workers", 0, "simulation worker count (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "queued-job bound; a full queue returns 429")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "result cache budget in bytes (0 disables caching)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof/* profiling endpoints")
	smoke := fs.Bool("smoke", false, "run the serve-smoke self check and exit")
	journalDir := fs.String("journal-dir", "", "directory for the durable job journal (empty disables crash recovery)")
	jobDeadline := fs.Duration("job-deadline", 0, "per-attempt wall-clock deadline (0 disables)")
	maxRetries := fs.Int("max-retries", 0, "retry budget for retryable job failures")
	heartbeat := fs.Duration("heartbeat-timeout", 0, "cancel and retry attempts silent for this long (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	if *queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	}
	if *cacheBytes < 0 {
		return fmt.Errorf("-cache-bytes must be non-negative, got %d", *cacheBytes)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if *jobDeadline < 0 {
		return fmt.Errorf("-job-deadline must be non-negative, got %v", *jobDeadline)
	}
	if *maxRetries < 0 {
		return fmt.Errorf("-max-retries must be non-negative, got %d", *maxRetries)
	}
	if *heartbeat < 0 {
		return fmt.Errorf("-heartbeat-timeout must be non-negative, got %v", *heartbeat)
	}
	logger, err := newLogger(*logFormat, os.Stderr)
	if err != nil {
		return err
	}

	if *smoke {
		return runSmoke(stdout)
	}
	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheBytes:       *cacheBytes,
		Metrics:          obs.New(),
		Logger:           logger,
		JobDeadline:      *jobDeadline,
		MaxRetries:       *maxRetries,
		HeartbeatTimeout: *heartbeat,
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			return fmt.Errorf("-journal-dir: %w", err)
		}
		cfg.JournalPath = filepath.Join(*journalDir, "jobs.journal")
	}
	return serve(*addr, cfg, *drainTimeout, *pprofOn, logger)
}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully:
// refuse new work, cancel queued and running jobs, stop the listener.
func serve(addr string, cfg service.Config, drainTimeout time.Duration, pprofOn bool, logger *slog.Logger) error {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if pprofOn {
		// Profiling is opt-in: the endpoints expose heap contents and
		// stack traces, so they stay off unless explicitly requested.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	httpSrv := &http.Server{Addr: addr, Handler: mux}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("sinetd listening",
		"addr", ln.Addr().String(),
		"version", obs.Version(),
		"gomaxprocs", runtime.GOMAXPROCS(0),
		"workers", cfg.Workers,
		"queue", cfg.QueueDepth,
		"cache_bytes", cfg.CacheBytes,
		"pprof", pprofOn)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("signal received, draining", "signal", sig.String())
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Order matters: drain the service first so in-flight HTTP polls see
	// jobs reach their canceled terminal states, then close the listener.
	if err := svc.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	logger.Info("drained cleanly")
	return <-errCh
}
