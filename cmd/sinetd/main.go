// Command sinetd serves measurement campaigns over HTTP: submit passive,
// active, coverage or backhaul campaign specs as JSON jobs, follow their
// progress over SSE, and fetch content-addressed, cached results.
//
// Usage:
//
//	sinetd [-addr :8470] [-workers N] [-queue 64] [-cache-bytes 268435456]
//	sinetd -smoke   # self-check: serve on a random port, submit a small
//	                # job over HTTP, diff against the direct library call
//
// The API (see DESIGN.md "Serving architecture"):
//
//	POST   /v1/jobs             GET /v1/jobs/{id}         GET /v1/jobs/{id}/result
//	DELETE /v1/jobs/{id}        GET /v1/jobs/{id}/events  GET /v1/stats  GET /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sinet-io/sinet/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sinetd: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses arguments and serves (or self-checks) until shutdown. It is
// the single exit path: every failure returns an error instead of exiting
// mid-flight.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sinetd", flag.ContinueOnError)
	addr := fs.String("addr", ":8470", "listen address")
	workers := fs.Int("workers", 0, "simulation worker count (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "queued-job bound; a full queue returns 429")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "result cache budget in bytes (0 disables caching)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	smoke := fs.Bool("smoke", false, "run the serve-smoke self check and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	if *queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	}
	if *cacheBytes < 0 {
		return fmt.Errorf("-cache-bytes must be non-negative, got %d", *cacheBytes)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}

	if *smoke {
		return runSmoke(stdout)
	}
	return serve(*addr, service.Config{Workers: *workers, QueueDepth: *queue, CacheBytes: *cacheBytes}, *drainTimeout, stdout)
}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully:
// refuse new work, cancel queued and running jobs, stop the listener.
func serve(addr string, cfg service.Config, drainTimeout time.Duration, stdout io.Writer) error {
	svc := service.New(cfg)
	httpSrv := &http.Server{Addr: addr, Handler: svc.Handler()}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sinetd listening on %s (workers=%d queue=%d cache=%dB)\n",
		ln.Addr(), cfg.Workers, cfg.QueueDepth, cfg.CacheBytes)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "received %v, draining\n", sig)
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Order matters: drain the service first so in-flight HTTP polls see
	// jobs reach their canceled terminal states, then close the listener.
	if err := svc.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "drained cleanly")
	return <-errCh
}
