// Command sinetd serves measurement campaigns over HTTP: submit passive,
// active, coverage or backhaul campaign specs as JSON jobs, follow their
// progress over SSE, and fetch content-addressed, cached results. With
// -coordinator it fronts a fleet of sinetd workers instead: jobs hash
// onto the worker ring, oversized campaigns shard across the fleet, and
// the fleet's telemetry aggregates into one scrape.
//
// Usage:
//
//	sinetd [-addr :8470] [-workers N] [-queue 64] [-cache-bytes 268435456]
//	       [-log-format text|json] [-pprof] [-retry-after 1s]
//	       [-journal-dir DIR] [-job-deadline 0] [-max-retries 0] [-heartbeat-timeout 0]
//	       [-peers URL,URL,... -advertise URL]   # worker: peer-filled cache
//	sinetd -coordinator -peers URL,URL,...       # cluster front door
//	       [-shard-threshold 16] [-max-shards 0]
//	sinetd -smoke   # self-check: serve on a random port, submit a small
//	                # job over HTTP, diff against the direct library call
//
// The API (see DESIGN.md "Serving architecture", "Observability" and
// "Cluster architecture"):
//
//	POST   /v1/jobs             GET /v1/jobs/{id}         GET /v1/jobs/{id}/result
//	DELETE /v1/jobs/{id}        GET /v1/jobs/{id}/events  GET /v1/stats
//	GET    /v1/cache            GET /healthz              GET /readyz
//	GET    /metrics             GET /debug/pprof/* (with -pprof)
//
// Logs are structured (log/slog) on stderr; -log-format json emits one
// JSON object per line for log shippers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/sinet-io/sinet/internal/cluster"
	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/service"
	"github.com/sinet-io/sinet/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("sinetd exiting", "error", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's structured logger in the requested
// format. The text handler is for humans at a terminal; json is one
// object per line for shippers.
func newLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
}

// parsePeers splits a comma-separated worker list and insists every
// entry is a usable base URL.
func parsePeers(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var peers []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(p), "/"))
		if p == "" {
			continue
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("-peers entry %q is not an http(s) base URL", p)
		}
		peers = append(peers, p)
	}
	return peers, nil
}

// run parses arguments and serves (or self-checks) until shutdown. It is
// the single exit path: every failure returns an error instead of exiting
// mid-flight.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sinetd", flag.ContinueOnError)
	addr := fs.String("addr", ":8470", "listen address")
	workers := fs.Int("workers", 0, "simulation worker count (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "queued-job bound; a full queue returns 429")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "result cache budget in bytes (0 disables caching)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof/* profiling endpoints")
	smoke := fs.Bool("smoke", false, "run the serve-smoke self check and exit")
	journalDir := fs.String("journal-dir", "", "directory for the durable job journal (empty disables crash recovery)")
	jobDeadline := fs.Duration("job-deadline", 0, "per-attempt wall-clock deadline (0 disables)")
	maxRetries := fs.Int("max-retries", 0, "retry budget for retryable job failures")
	heartbeat := fs.Duration("heartbeat-timeout", 0, "cancel and retry attempts silent for this long (0 disables)")
	retryAfter := fs.Duration("retry-after", 0, "Retry-After hint on 429/503 responses (0 = 1s)")
	coordinator := fs.Bool("coordinator", false, "run as cluster coordinator fronting the -peers workers")
	peersFlag := fs.String("peers", "", "comma-separated worker base URLs: the fleet (coordinator) or the cache ring (worker)")
	advertise := fs.String("advertise", "", "this worker's own base URL as it appears in -peers (worker mode)")
	shardThreshold := fs.Int("shard-threshold", 16, "campaign unit count above which the coordinator shards jobs across workers (-1 disables)")
	maxShards := fs.Int("max-shards", 0, "cap on one campaign's shard fan-out (0 = number of peers)")
	traceBuffer := fs.Int("trace-buffer", tracing.DefaultCapacity, "in-process span ring capacity for /debug/traces (0 disables tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	if *queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	}
	if *cacheBytes < 0 {
		return fmt.Errorf("-cache-bytes must be non-negative, got %d", *cacheBytes)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if *jobDeadline < 0 {
		return fmt.Errorf("-job-deadline must be non-negative, got %v", *jobDeadline)
	}
	if *maxRetries < 0 {
		return fmt.Errorf("-max-retries must be non-negative, got %d", *maxRetries)
	}
	if *heartbeat < 0 {
		return fmt.Errorf("-heartbeat-timeout must be non-negative, got %v", *heartbeat)
	}
	if *retryAfter < 0 {
		return fmt.Errorf("-retry-after must be non-negative, got %v", *retryAfter)
	}
	if *maxShards < 0 {
		return fmt.Errorf("-max-shards must be non-negative, got %d", *maxShards)
	}
	if *traceBuffer < 0 {
		return fmt.Errorf("-trace-buffer must be non-negative, got %d", *traceBuffer)
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if *coordinator && len(peers) == 0 {
		return errors.New("-coordinator requires a -peers worker list")
	}
	if *advertise != "" && len(peers) == 0 {
		return errors.New("-advertise only makes sense with -peers")
	}
	logger, err := newLogger(*logFormat, os.Stderr)
	if err != nil {
		return err
	}

	if *smoke {
		return runSmoke(stdout)
	}
	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheBytes:       *cacheBytes,
		Metrics:          obs.New(),
		Logger:           logger,
		JobDeadline:      *jobDeadline,
		MaxRetries:       *maxRetries,
		HeartbeatTimeout: *heartbeat,
		RetryAfter:       *retryAfter,
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	obs.RegisterRuntimeMetrics(cfg.Metrics)
	// The tracer's service name tells stitched timelines which process a
	// span ran in: the coordinator is "coordinator", a worker identifies
	// as its ring identity (-advertise) when it has one, else by pid.
	if *traceBuffer > 0 {
		identity := fmt.Sprintf("worker:%d", os.Getpid())
		if *coordinator {
			identity = "coordinator"
		} else if *advertise != "" {
			identity = "worker:" + strings.TrimSuffix(*advertise, "/")
		}
		cfg.Tracer = tracing.New(identity, *traceBuffer)
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			return fmt.Errorf("-journal-dir: %w", err)
		}
		cfg.JournalPath = filepath.Join(*journalDir, "jobs.journal")
	}

	if *coordinator {
		ccfg := cluster.Config{
			Peers:          peers,
			ShardThreshold: *shardThreshold,
			MaxShards:      *maxShards,
			Metrics:        cfg.Metrics,
			Logger:         logger,
			Tracer:         cfg.Tracer,
			Local:          cfg,
		}
		build := func() (http.Handler, func(context.Context) error, []any, error) {
			coord, err := cluster.New(ccfg)
			if err != nil {
				return nil, nil, nil, err
			}
			fields := []any{
				"mode", "coordinator",
				"peers", len(peers),
				"shard_threshold", *shardThreshold,
				"workers", cfg.Workers,
				"queue", cfg.QueueDepth,
			}
			return coord.Handler(), coord.Shutdown, fields, nil
		}
		return serve(*addr, build, *drainTimeout, *pprofOn, logger)
	}

	// Worker mode: with a peer ring and a self identity, cache misses
	// consult the key's ring owner before computing.
	if len(peers) > 0 && *advertise != "" {
		self := strings.TrimSuffix(*advertise, "/")
		cfg.CacheFill = cluster.PeerCacheFill(cluster.NewRing(peers, 0), self, nil)
	}
	build := func() (http.Handler, func(context.Context) error, []any, error) {
		svc, err := service.New(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		fields := []any{
			"gomaxprocs", runtime.GOMAXPROCS(0),
			"workers", cfg.Workers,
			"queue", cfg.QueueDepth,
			"cache_bytes", cfg.CacheBytes,
			"peers", len(peers),
		}
		return svc.Handler(), svc.Shutdown, fields, nil
	}
	return serve(*addr, build, *drainTimeout, *pprofOn, logger)
}

// bootHandler answers while the real handler is still under
// construction — notably during journal replay, which happens inside
// service.New and can take a while on a big journal. The process is
// alive (/healthz 200) but not ready: /readyz and every API route answer
// 503 with a Retry-After hint, so load balancers hold traffic without
// declaring the process dead.
func bootHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "starting: journal replay in progress", http.StatusServiceUnavailable)
	})
	return mux
}

// serve binds the listener first, answers with bootHandler while build
// constructs the real handler (journal replay, probe startup), then
// swaps it in and announces readiness. It runs until SIGINT/SIGTERM and
// drains gracefully: refuse new work, cancel queued and running jobs,
// stop the listener. build returns the handler, its drain function and
// extra fields for the startup log line.
func serve(addr string, build func() (http.Handler, func(context.Context) error, []any, error), drainTimeout time.Duration, pprofOn bool, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var current atomic.Pointer[http.Handler]
	boot := bootHandler()
	current.Store(&boot)
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*current.Load()).ServeHTTP(w, r)
	})}

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	handler, shutdown, fields, err := build()
	if err != nil {
		_ = httpSrv.Close()
		<-errCh
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if pprofOn {
		// Profiling is opt-in: the endpoints expose heap contents and
		// stack traces, so they stay off unless explicitly requested.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	var real http.Handler = mux
	current.Store(&real)
	logger.Info("sinetd listening", append([]any{
		"addr", ln.Addr().String(),
		"version", obs.Version(),
		"pprof", pprofOn,
	}, fields...)...)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("signal received, draining", "signal", sig.String())
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Order matters: drain the service first so in-flight HTTP polls see
	// jobs reach their canceled terminal states, then close the listener.
	if err := shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	logger.Info("drained cleanly")
	return <-errCh
}
