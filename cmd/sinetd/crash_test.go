package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/service"
)

// TestMain doubles the test binary as the daemon under test: with
// SINETD_E2E_CHILD set the process runs sinetd's real entrypoint instead
// of the test suite, so the crash test can SIGKILL an actual separate
// process rather than simulate one.
func TestMain(m *testing.M) {
	if os.Getenv("SINETD_E2E_CHILD") == "1" {
		if err := run(strings.Fields(os.Getenv("SINETD_E2E_ARGS")), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startDaemon re-execs the test binary as a sinetd child on a random port
// with the given journal directory, and parses the listen address out of
// its startup log line.
func startDaemon(t *testing.T, journalDir string) (*exec.Cmd, string) {
	t.Helper()
	return startProc(t, "-addr 127.0.0.1:0 -workers 1 -cache-bytes 0 -journal-dir "+journalDir)
}

// startProc re-execs the test binary as a sinetd child with the given
// argument string and parses the listen address out of its startup log
// line. The child's stderr keeps draining for its whole life so the
// daemon never blocks on a full pipe.
func startProc(t *testing.T, args string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"SINETD_E2E_CHILD=1",
		"SINETD_E2E_ARGS="+args,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stderr)
		for scanner.Scan() {
			line := scanner.Text()
			if !strings.Contains(line, "sinetd listening") {
				continue
			}
			for _, f := range strings.Fields(line) {
				if strings.HasPrefix(f, "addr=") {
					select {
					case addrCh <- strings.TrimPrefix(f, "addr="):
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("daemon never logged its listen address")
		return nil, ""
	}
}

// crashSpec is the campaign the crash test serves: eight sites drive
// eight serial "contacts" units on the single worker, each a few hundred
// milliseconds of work, so the kill (fired the moment the first checkpoint
// hits the journal) lands with the campaign provably mid-flight — at least
// one unit checkpointed, several still to compute.
const crashSpec = `{
  "kind": "passive",
  "passive": {"seed": 7, "days": 30, "sites": ["HK", "SYD", "LDN", "PGH", "SH", "GZ", "NC", "YC"], "constellations": ["Tianqi"]}
}`

// TestCrashKillResumeServesByteIdenticalResult is the end-to-end crash
// drill: start a real sinetd, submit a campaign, SIGKILL the process after
// its first checkpoint hits the journal, restart on the same journal, and
// require the finished job — same ID, resumed from the checkpoint — to
// serve bytes identical to an uninterrupted direct library run.
func TestCrashKillResumeServesByteIdenticalResult(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons and runs a one-day campaign")
	}
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGKILL")
	}
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "jobs.journal")

	cmd, addr := startDaemon(t, dir)
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(crashSpec))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := decodeInto(resp, http.StatusAccepted, &submitted); err != nil {
		t.Fatal(err)
	}

	// Kill as soon as the first checkpoint is durably journaled: the job is
	// then provably incomplete with real progress to resume.
	deadline := time.Now().Add(3 * time.Minute)
	for {
		data, _ := os.ReadFile(journalPath)
		if bytes.Contains(data, []byte(`"op":"done"`)) {
			t.Fatal("campaign finished before the kill; crash window missed")
		}
		if bytes.Contains(data, []byte(`"op":"checkpoint"`)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint journaled within 3m")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	cmd2, addr2 := startDaemon(t, dir)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	base := "http://" + addr2

	// The restarted daemon re-admits the job under its pre-crash ID and
	// finishes it.
	deadline = time.Now().Add(3 * time.Minute)
	for {
		r, err := http.Get(base + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := decodeInto(r, http.StatusOK, &view); err != nil {
			t.Fatal(err)
		}
		if view.State == "done" {
			break
		}
		if view.State == "failed" || view.State == "canceled" {
			t.Fatalf("resumed job ended %s: %s", view.State, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job still %s after 3m", view.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
	r, err := http.Get(base + "/v1/jobs/" + submitted.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	served, err := readAll(r, http.StatusOK)
	if err != nil {
		t.Fatal(err)
	}

	// Golden: the same campaign straight through the library, no daemon, no
	// crash, no resume.
	var spec service.JobSpec
	if err := json.Unmarshal([]byte(crashSpec), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	direct, err := service.Run(context.Background(), &spec, service.RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := service.MarshalResult(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, golden) {
		t.Fatalf("resumed result (%d bytes) differs from uninterrupted run (%d bytes)", len(served), len(golden))
	}

	// The recovery is visible on /metrics.
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := readAll(mr, http.StatusOK)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte("sinet_journal_replayed_jobs_total 1")) {
		t.Fatal("metrics missing sinet_journal_replayed_jobs_total 1 after recovery")
	}
}
