package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	sinet "github.com/sinet-io/sinet"
	"github.com/sinet-io/sinet/internal/service"
)

// smokeSpec is the small passive campaign the self-check serves: one site,
// the 3-satellite FOSSA fleet, one day — seconds of work.
const smokeSpec = `{
  "kind": "passive",
  "passive": {"seed": 7, "days": 1, "sites": ["HK"], "constellations": ["FOSSA"]}
}`

// runSmoke is the end-to-end self check behind `make serve-smoke`: start a
// daemon on a random port with the cache DISABLED (so the served result is
// freshly computed, not replayed), drive a job through the HTTP API, and
// require the served bytes to be byte-identical to the same campaign run
// directly through the sinet library.
func runSmoke(stdout io.Writer) error {
	svc, err := service.New(service.Config{CacheBytes: 0})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stdout, "serve-smoke: daemon on %s (cache disabled)\n", base)

	// Health first: the daemon must be live before it is load-bearing.
	if err := expectHealth(base); err != nil {
		return err
	}

	// Submit over the wire.
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		return fmt.Errorf("serve-smoke: submit: %w", err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := decodeInto(resp, http.StatusAccepted, &submitted); err != nil {
		return fmt.Errorf("serve-smoke: submit: %w", err)
	}
	fmt.Fprintf(stdout, "serve-smoke: submitted job %s\n", submitted.ID)

	// Poll to completion.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		r, err := http.Get(base + "/v1/jobs/" + submitted.ID)
		if err != nil {
			return fmt.Errorf("serve-smoke: poll: %w", err)
		}
		var view struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := decodeInto(r, http.StatusOK, &view); err != nil {
			return fmt.Errorf("serve-smoke: poll: %w", err)
		}
		if view.State == "done" {
			break
		}
		if view.State == "failed" || view.State == "canceled" {
			return fmt.Errorf("serve-smoke: job ended %s: %s", view.State, view.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve-smoke: job still %s after 2m", view.State)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Fetch the served result bytes.
	r, err := http.Get(base + "/v1/jobs/" + submitted.ID + "/result")
	if err != nil {
		return fmt.Errorf("serve-smoke: result: %w", err)
	}
	served, err := readAll(r, http.StatusOK)
	if err != nil {
		return fmt.Errorf("serve-smoke: result: %w", err)
	}

	// The golden: the exact same campaign through the public library API,
	// serialized by the service's canonical marshaller.
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	hk, _ := sinet.SiteByCode("HK")
	direct, err := sinet.RunPassive(sinet.PassiveConfig{
		Seed:           7,
		Start:          start,
		Days:           1,
		Sites:          []sinet.Site{hk},
		Constellations: []sinet.Constellation{sinet.FOSSA(start)},
	})
	if err != nil {
		return fmt.Errorf("serve-smoke: direct run: %w", err)
	}
	golden, err := service.MarshalResult(direct)
	if err != nil {
		return fmt.Errorf("serve-smoke: marshal direct result: %w", err)
	}

	if !bytes.Equal(served, golden) {
		return fmt.Errorf("serve-smoke: served result (%d bytes) differs from direct library run (%d bytes)", len(served), len(golden))
	}
	fmt.Fprintf(stdout, "serve-smoke: PASS — served result byte-identical to direct run (%d bytes)\n", len(served))
	return nil
}

func expectHealth(base string) error {
	r, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("serve-smoke: healthz: %w", err)
	}
	if _, err := readAll(r, http.StatusOK); err != nil {
		return fmt.Errorf("serve-smoke: healthz: %w", err)
	}
	return nil
}

func decodeInto(r *http.Response, wantStatus int, v any) error {
	data, err := readAll(r, wantStatus)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func readAll(r *http.Response, wantStatus int) ([]byte, error) {
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	if r.StatusCode != wantStatus {
		return nil, fmt.Errorf("status %d (want %d): %s", r.StatusCode, wantStatus, bytes.TrimSpace(data))
	}
	return data, nil
}
