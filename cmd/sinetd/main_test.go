package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative workers", []string{"-workers", "-1"}, "-workers must be non-negative"},
		{"zero queue", []string{"-queue", "0"}, "-queue must be positive"},
		{"negative queue", []string{"-queue", "-5"}, "-queue must be positive"},
		{"negative cache", []string{"-cache-bytes", "-1"}, "-cache-bytes must be non-negative"},
		{"zero drain timeout", []string{"-drain-timeout", "0s"}, "-drain-timeout must be positive"},
		{"bad log format", []string{"-log-format", "yaml"}, "-log-format must be text or json"},
		{"negative job deadline", []string{"-job-deadline", "-1s"}, "-job-deadline must be non-negative"},
		{"negative max retries", []string{"-max-retries", "-1"}, "-max-retries must be non-negative"},
		{"negative heartbeat", []string{"-heartbeat-timeout", "-1s"}, "-heartbeat-timeout must be non-negative"},
		{"negative retry-after", []string{"-retry-after", "-1s"}, "-retry-after must be non-negative"},
		{"negative max-shards", []string{"-max-shards", "-1"}, "-max-shards must be non-negative"},
		{"coordinator without peers", []string{"-coordinator"}, "-coordinator requires a -peers worker list"},
		{"bad peer url", []string{"-peers", "ftp://w1"}, "not an http(s) base URL"},
		{"advertise without peers", []string{"-advertise", "http://me:1"}, "-advertise only makes sense with -peers"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestNewLoggerFormats(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if _, err := newLogger(format, io.Discard); err != nil {
			t.Errorf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("xml", io.Discard); err == nil {
		t.Error("newLogger(xml): expected error")
	}
}

func TestSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a one-day campaign twice")
	}
	var out strings.Builder
	if err := run([]string{"-smoke"}, &out); err != nil {
		t.Fatalf("smoke failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("smoke output missing PASS:\n%s", out.String())
	}
}
