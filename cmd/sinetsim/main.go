// Command sinetsim runs a full passive measurement campaign (the paper's
// §2.2/§3.1 deployment: up to 27 ground stations at 8 sites listening to
// four constellations) and writes the packet-trace dataset plus a summary.
//
// Usage:
//
//	sinetsim [-days 7] [-seed 42] [-sites HK,SYD] [-constellations Tianqi,PICO]
//	         [-scheduler tracking|roundrobin] [-csv traces.csv] [-json traces.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	sinet "github.com/sinet-io/sinet"
	"github.com/sinet-io/sinet/internal/groundstation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sinetsim: ")

	days := flag.Int("days", 7, "campaign length, days")
	seed := flag.Int64("seed", 42, "master random seed")
	sitesArg := flag.String("sites", "", "comma-separated site codes (default: all 8)")
	consArg := flag.String("constellations", "", "comma-separated constellation names (default: all 4)")
	schedArg := flag.String("scheduler", "tracking", "station scheduler: tracking (customized) or roundrobin (vanilla TinyGS)")
	csvPath := flag.String("csv", "", "write the trace dataset as CSV")
	jsonPath := flag.String("json", "", "write the trace dataset as JSON")
	honorStart := flag.Bool("honor-start", false, "delay sites to their Table 1 start months")
	flag.Parse()

	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	cfg := sinet.PassiveConfig{
		Seed:           *seed,
		Start:          start,
		Days:           *days,
		HonorSiteStart: *honorStart,
	}

	if *sitesArg == "" {
		cfg.Sites = sinet.PaperSites()
	} else {
		for _, code := range strings.Split(*sitesArg, ",") {
			s, ok := sinet.SiteByCode(strings.ToUpper(strings.TrimSpace(code)))
			if !ok {
				log.Fatalf("unknown site %q", code)
			}
			cfg.Sites = append(cfg.Sites, s)
		}
	}

	all := sinet.AllConstellations(start)
	if *consArg == "" {
		cfg.Constellations = all
	} else {
		for _, name := range strings.Split(*consArg, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, c := range all {
				if strings.EqualFold(c.Name, name) {
					cfg.Constellations = append(cfg.Constellations, c)
					found = true
				}
			}
			if !found {
				log.Fatalf("unknown constellation %q", name)
			}
		}
	}

	switch *schedArg {
	case "tracking":
		// Default (the paper's customized scheduler).
	case "roundrobin":
		var catalog []int
		for _, c := range cfg.Constellations {
			for _, s := range c.Sats {
				catalog = append(catalog, s.NoradID)
			}
		}
		cfg.Scheduler = groundstation.RoundRobinScheduler{Catalog: catalog, Slot: 10 * time.Minute}
	default:
		log.Fatalf("unknown scheduler %q", *schedArg)
	}

	fmt.Printf("running %d-day campaign: %d sites, %d constellations, scheduler=%s\n",
		*days, len(cfg.Sites), len(cfg.Constellations), *schedArg)
	t0 := time.Now()
	res, err := sinet.RunPassive(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed in %v: %d trace records, %d contact windows\n\n",
		time.Since(t0).Round(time.Millisecond), res.Dataset.Len(), len(res.Contacts))

	fmt.Printf("%-6s %10s\n", "SITE", "TRACES")
	for _, sc := range res.SiteTraceCounts() {
		fmt.Printf("%-6s %10d\n", sc.Site.Code, sc.Traces)
	}
	fmt.Println()
	for name, n := range res.Dataset.CountByConstellation() {
		fmt.Printf("%-8s %8d traces", name, n)
		sh := res.Shrinkage(name, "")
		if sh.Contacts > 0 {
			fmt.Printf("  window shrink %.1f%% over %d contacts", sh.ShrinkFraction*100, sh.Contacts)
		}
		fmt.Println()
	}

	if *csvPath != "" {
		writeDataset(*csvPath, func(f *os.File) error { return res.Dataset.WriteCSV(f) })
		fmt.Printf("\nwrote CSV dataset to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		writeDataset(*jsonPath, func(f *os.File) error { return res.Dataset.WriteJSON(f) })
		fmt.Printf("wrote JSON dataset to %s\n", *jsonPath)
	}
}

// writeDataset creates the file and runs the encoder, failing fatally on
// any error so partial datasets are never mistaken for complete ones.
func writeDataset(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("create %s: %v", path, err)
	}
	if err := write(f); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close %s: %v", path, err)
	}
}
