// Command sinetsim runs a full passive measurement campaign (the paper's
// §2.2/§3.1 deployment: up to 27 ground stations at 8 sites listening to
// four constellations) and writes the packet-trace dataset plus a summary.
//
// Usage:
//
//	sinetsim [-days 7] [-seed 42] [-sites HK,SYD] [-constellations Tianqi,PICO]
//	         [-scheduler tracking|roundrobin] [-csv traces.csv] [-json traces.json]
//	         [-station-mtbf 72h -station-mttr 6h] [-telemetry]
//
// With -telemetry the run collects engine metrics (SGP4 calls, ephemeris
// cache hits, sim tasks, per-phase timings) and appends a Prometheus-format
// snapshot to the summary. Telemetry never changes the simulated results.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	sinet "github.com/sinet-io/sinet"
	"github.com/sinet-io/sinet/internal/groundstation"
	"github.com/sinet-io/sinet/internal/netgraph"
	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/report"
	"github.com/sinet-io/sinet/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("sinetsim exiting", "error", err)
		os.Exit(1)
	}
}

// run parses the arguments, executes the campaign and renders the summary
// to stdout. It is the single exit path: every failure returns an error
// instead of exiting mid-flight.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sinetsim", flag.ContinueOnError)
	days := fs.Int("days", 7, "campaign length, days")
	seed := fs.Int64("seed", 42, "master random seed")
	sitesArg := fs.String("sites", "", "comma-separated site codes (default: all 8)")
	consArg := fs.String("constellations", "", "comma-separated constellation names (default: all 4)")
	schedArg := fs.String("scheduler", "tracking", "station scheduler: tracking (customized) or roundrobin (vanilla TinyGS)")
	csvPath := fs.String("csv", "", "write the trace dataset as CSV")
	jsonPath := fs.String("json", "", "write the trace dataset as JSON")
	honorStart := fs.Bool("honor-start", false, "delay sites to their Table 1 start months")
	stationMTBF := fs.Duration("station-mtbf", 0, "inject station churn: mean up-time between failures (requires -station-mttr)")
	stationMTTR := fs.Duration("station-mttr", 0, "inject station churn: mean down-time per failure (requires -station-mtbf)")
	telemetry := fs.Bool("telemetry", false, "collect campaign telemetry and print a Prometheus-format snapshot after the run")
	exact := fs.Bool("exact", false, "disable ephemeris interpolation: propagate every query exactly (slower, reproduces pre-interpolation output byte for byte)")
	isl := fs.Bool("isl", false, "run a routing campaign over the time-varying ISL network graph instead of the passive campaign")
	islRangeKm := fs.Float64("isl-range-km", 0, "ISL terminal range budget in km (default 5000; requires -isl)")
	routingPolicy := fs.String("routing-policy", "compare", "routing delivery policy: store, relay, or compare (requires -isl)")
	linkMTBF := fs.Duration("link-mtbf", 0, "inject ISL link churn: mean up-time between failures (requires -isl and -link-mttr)")
	linkMTTR := fs.Duration("link-mttr", 0, "inject ISL link churn: mean down-time per failure (requires -isl and -link-mtbf)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Distinguish "left at default" from "explicitly set": zero means
	// "default"/"off" for these flags only when the user never typed them,
	// so an explicit `-isl-range-km 0` is a config mistake to reject, not
	// silently reinterpret.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *days <= 0 {
		return fmt.Errorf("-days must be positive, got %d", *days)
	}
	if set["isl-range-km"] && (math.IsNaN(*islRangeKm) || *islRangeKm <= 0) {
		return fmt.Errorf("-isl-range-km must be positive when set, got %v", *islRangeKm)
	}
	if set["link-mtbf"] && *linkMTBF <= 0 {
		return fmt.Errorf("-link-mtbf must be positive when set, got %v", *linkMTBF)
	}
	if set["link-mttr"] && *linkMTTR <= 0 {
		return fmt.Errorf("-link-mttr must be positive when set, got %v", *linkMTTR)
	}
	if (*stationMTBF > 0) != (*stationMTTR > 0) {
		return fmt.Errorf("-station-mtbf and -station-mttr must be set together")
	}
	if *stationMTBF < 0 || *stationMTTR < 0 {
		return fmt.Errorf("-station-mtbf/-station-mttr must be non-negative")
	}
	if !*isl && (*islRangeKm != 0 || *routingPolicy != "compare" || *linkMTBF != 0 || *linkMTTR != 0) {
		return fmt.Errorf("-isl-range-km, -routing-policy and -link-mtbf/-link-mttr require -isl")
	}
	if (*linkMTBF > 0) != (*linkMTTR > 0) {
		return fmt.Errorf("-link-mtbf and -link-mttr must be set together")
	}
	if *linkMTBF < 0 || *linkMTTR < 0 {
		return fmt.Errorf("-link-mtbf/-link-mttr must be non-negative")
	}
	if *isl {
		return runRouting(stdout, *days, *seed, *consArg, *islRangeKm, *routingPolicy, *linkMTBF, *linkMTTR, *telemetry, *exact)
	}

	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	cfg := sinet.PassiveConfig{
		Seed:           *seed,
		Start:          start,
		Days:           *days,
		HonorSiteStart: *honorStart,
		ExactEphemeris: *exact,
	}
	if *stationMTBF > 0 {
		cfg.Faults = &sinet.FaultConfig{StationMTBF: *stationMTBF, StationMTTR: *stationMTTR}
	}

	if *sitesArg == "" {
		cfg.Sites = sinet.PaperSites()
	} else {
		for _, code := range strings.Split(*sitesArg, ",") {
			s, ok := sinet.SiteByCode(strings.ToUpper(strings.TrimSpace(code)))
			if !ok {
				return fmt.Errorf("unknown site %q", code)
			}
			cfg.Sites = append(cfg.Sites, s)
		}
	}

	all := sinet.AllConstellations(start)
	if *consArg == "" {
		cfg.Constellations = all
	} else {
		for _, name := range strings.Split(*consArg, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, c := range all {
				if strings.EqualFold(c.Name, name) {
					cfg.Constellations = append(cfg.Constellations, c)
					found = true
				}
			}
			if !found {
				return fmt.Errorf("unknown constellation %q", name)
			}
		}
	}

	switch *schedArg {
	case "tracking":
		// Default (the paper's customized scheduler).
	case "roundrobin":
		var catalog []int
		for _, c := range cfg.Constellations {
			for _, s := range c.Sats {
				catalog = append(catalog, s.NoradID)
			}
		}
		cfg.Scheduler = groundstation.RoundRobinScheduler{Catalog: catalog, Slot: 10 * time.Minute}
	default:
		return fmt.Errorf("unknown scheduler %q", *schedArg)
	}

	var reg *obs.Registry
	if *telemetry {
		reg = obs.New()
		orbit.SetMetrics(reg)
		sim.SetMetrics(reg)
		defer orbit.SetMetrics(nil)
		defer sim.SetMetrics(nil)
	}

	slog.New(slog.NewTextHandler(os.Stderr, nil)).Info("sinetsim starting",
		"version", obs.Version(),
		"gomaxprocs", runtime.GOMAXPROCS(0),
		"days", *days,
		"seed", *seed,
		"sites", len(cfg.Sites),
		"constellations", len(cfg.Constellations),
		"scheduler", *schedArg,
		"telemetry", *telemetry)

	fmt.Fprintf(stdout, "running %d-day campaign: %d sites, %d constellations, scheduler=%s\n",
		*days, len(cfg.Sites), len(cfg.Constellations), *schedArg)
	t0 := time.Now()
	res, err := sinet.RunPassive(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "completed in %v: %d trace records, %d contact windows\n\n",
		time.Since(t0).Round(time.Millisecond), res.Dataset.Len(), len(res.Contacts))

	fmt.Fprintf(stdout, "%-6s %10s\n", "SITE", "TRACES")
	for _, sc := range res.SiteTraceCounts() {
		fmt.Fprintf(stdout, "%-6s %10d\n", sc.Site.Code, sc.Traces)
	}
	fmt.Fprintln(stdout)
	for name, n := range res.Dataset.CountByConstellation() {
		fmt.Fprintf(stdout, "%-8s %8d traces", name, n)
		sh := res.Shrinkage(name, "")
		if sh.Contacts > 0 {
			fmt.Fprintf(stdout, "  window shrink %.1f%% over %d contacts", sh.ShrinkFraction*100, sh.Contacts)
		}
		fmt.Fprintln(stdout)
	}

	if len(res.Availability) > 0 {
		rows := make([]report.ChurnRow, len(res.Availability))
		for i, a := range res.Availability {
			rows[i] = report.ChurnRow{Station: a.Station, Site: a.Site, Uptime: a.Uptime, Outages: a.Outages, Downtime: a.Downtime}
		}
		if err := report.ChurnSummary(stdout, rows); err != nil {
			return err
		}
	}

	if *csvPath != "" {
		if err := writeDataset(*csvPath, func(f *os.File) error { return res.Dataset.WriteCSV(f) }); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote CSV dataset to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		if err := writeDataset(*jsonPath, func(f *os.File) error { return res.Dataset.WriteJSON(f) }); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote JSON dataset to %s\n", *jsonPath)
	}

	if reg != nil {
		fmt.Fprintf(stdout, "\n# telemetry snapshot (Prometheus text format)\n")
		if err := reg.WritePrometheus(stdout); err != nil {
			return err
		}
	}
	return nil
}

// runRouting executes the -isl routing campaign: store-and-forward vs
// ISL relay over the time-varying network graph, summarized as latency
// CDFs per policy.
func runRouting(stdout io.Writer, days int, seed int64, consArg string, islRangeKm float64, policy string, linkMTBF, linkMTTR time.Duration, telemetry, exact bool) error {
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	cfg := sinet.RoutingConfig{
		Seed:           seed,
		Start:          start,
		Days:           days,
		MaxISLRangeKm:  islRangeKm,
		Policy:         policy,
		ExactEphemeris: exact,
	}
	if consArg != "" {
		names := strings.Split(consArg, ",")
		if len(names) != 1 {
			return fmt.Errorf("-isl routes one constellation at a time, got %d", len(names))
		}
		name := strings.TrimSpace(names[0])
		found := false
		for _, c := range sinet.AllConstellations(start) {
			if strings.EqualFold(c.Name, name) {
				cons := c
				cfg.Constellation = &cons
				found = true
			}
		}
		// "MegaN" (e.g. Mega256) synthesizes a Starlink-class Walker shell
		// for beyond-the-paper scale sweeps.
		if !found {
			if rest, ok := strings.CutPrefix(strings.ToLower(name), "mega"); ok {
				n, err := strconv.Atoi(rest)
				if err != nil || n <= 0 {
					return fmt.Errorf("bad mega constellation size %q (want e.g. Mega256)", name)
				}
				cons := sinet.Mega(start, n)
				cfg.Constellation = &cons
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown constellation %q", name)
		}
	}
	if linkMTBF > 0 {
		cfg.Faults = &sinet.FaultConfig{LinkMTBF: linkMTBF, LinkMTTR: linkMTTR}
	}

	var reg *obs.Registry
	if telemetry {
		reg = obs.New()
		orbit.SetMetrics(reg)
		sim.SetMetrics(reg)
		netgraph.SetMetrics(reg)
		defer orbit.SetMetrics(nil)
		defer sim.SetMetrics(nil)
		defer netgraph.SetMetrics(nil)
	}

	consName := "Tianqi"
	if cfg.Constellation != nil {
		consName = cfg.Constellation.Name
	}
	fmt.Fprintf(stdout, "running %d-day routing campaign: %s, policy=%s\n", days, consName, policy)
	t0 := time.Now()
	res, err := sinet.RunRouting(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "completed in %v: %d packets over %d snapshots, %d candidate ISLs (mean %.1f live)\n\n",
		time.Since(t0).Round(time.Millisecond), len(res.Packets), res.Snapshots, res.CandidateISLs, res.MeanLiveISLs)

	if res.Store.Generated > 0 {
		fmt.Fprintf(stdout, "store-and-forward: %d/%d delivered\n", res.Store.Delivered, res.Store.Generated)
		if err := report.LatencyCDF(stdout, "store-and-forward latency", res.StoreLatenciesSec(), 16); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if res.Relay.Generated > 0 {
		fmt.Fprintf(stdout, "ISL relay: %d/%d delivered, mean %.1f hops (max %d)\n",
			res.Relay.Delivered, res.Relay.Generated, res.Relay.MeanHops, res.Relay.MaxHops)
		if err := report.LatencyCDF(stdout, "relay latency", res.RelayLatenciesSec(), 16); err != nil {
			return err
		}
	}

	if reg != nil {
		fmt.Fprintf(stdout, "\n# telemetry snapshot (Prometheus text format)\n")
		if err := reg.WritePrometheus(stdout); err != nil {
			return err
		}
	}
	return nil
}

// writeDataset creates the file and runs the encoder, reporting any error
// so partial datasets are never mistaken for complete ones.
func writeDataset(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}
