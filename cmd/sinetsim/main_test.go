package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero days", []string{"-days", "0"}, "-days must be positive"},
		{"negative days", []string{"-days", "-3"}, "-days must be positive"},
		{"mtbf without mttr", []string{"-station-mtbf", "48h"}, "must be set together"},
		{"mttr without mtbf", []string{"-station-mttr", "6h"}, "must be set together"},
		{"unknown site", []string{"-sites", "ATLANTIS"}, "unknown site"},
		{"unknown constellation", []string{"-constellations", "Starlink9000"}, "unknown constellation"},
		{"unknown scheduler", []string{"-scheduler", "psychic"}, "unknown scheduler"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestTelemetrySnapshotAppended(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a one-day campaign")
	}
	var out strings.Builder
	err := run([]string{
		"-days", "1", "-sites", "HK", "-constellations", "Tianqi", "-telemetry",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# telemetry snapshot (Prometheus text format)",
		"# TYPE sinet_sgp4_calls_total counter",
		"sinet_sim_tasks_total",
		`sinet_sim_phase_seconds_count{phase="contacts"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry snapshot missing %q:\n%s", want, text)
		}
	}
}

func TestRunSmallCampaignWithChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a one-day campaign")
	}
	var out strings.Builder
	err := run([]string{
		"-days", "1", "-sites", "HK", "-constellations", "Tianqi",
		"-station-mtbf", "12h", "-station-mttr", "12h",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Station availability under churn") {
		t.Fatalf("summary missing the churn section:\n%s", text)
	}
	if !strings.Contains(text, "fleet mean availability") {
		t.Fatalf("summary missing the fleet mean:\n%s", text)
	}
}

func TestRunRejectsBadRoutingFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"range without isl", []string{"-isl-range-km", "4000"}, "require -isl"},
		{"policy without isl", []string{"-routing-policy", "relay"}, "require -isl"},
		{"link mtbf without mttr", []string{"-isl", "-link-mtbf", "6h"}, "must be set together"},
		{"link mttr without mtbf", []string{"-isl", "-link-mttr", "1h"}, "must be set together"},
		{"negative link pair", []string{"-isl", "-link-mtbf", "-6h", "-link-mttr", "-1h"}, "-link-mtbf must be positive"},
		{"explicit zero link mtbf", []string{"-isl", "-link-mtbf", "0s", "-link-mttr", "1h"}, "-link-mtbf must be positive"},
		{"explicit zero link mttr", []string{"-isl", "-link-mtbf", "6h", "-link-mttr", "0s"}, "-link-mttr must be positive"},
		{"explicit zero link pair", []string{"-isl", "-link-mtbf", "0s", "-link-mttr", "0s"}, "-link-mtbf must be positive"},
		{"explicit zero isl range", []string{"-isl", "-isl-range-km", "0"}, "-isl-range-km must be positive"},
		{"negative isl range", []string{"-isl", "-isl-range-km", "-4000"}, "-isl-range-km must be positive"},
		{"NaN isl range", []string{"-isl", "-isl-range-km", "NaN"}, "-isl-range-km must be positive"},
		{"bad policy", []string{"-isl", "-routing-policy", "teleport"}, "Policy"},
		{"two constellations", []string{"-isl", "-constellations", "Tianqi,FOSSA"}, "one constellation"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRunRoutingCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a one-day campaign")
	}
	var out strings.Builder
	err := run([]string{"-isl", "-days", "1", "-telemetry"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"store-and-forward latency",
		"relay latency",
		"candidate ISLs",
		"sinet_topology_builds_total",
		"sinet_deliveries_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("routing summary missing %q:\n%s", want, text)
		}
	}
}
