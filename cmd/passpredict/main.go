// Command passpredict predicts satellite contact windows over a ground
// site, either from a TLE file or for one of the built-in constellations.
//
// Usage:
//
//	passpredict -lat 22.3 -lon 114.2 [-alt 0] [-hours 24] [-minel 0]
//	            [-tle FILE | -constellation Tianqi|FOSSA|PICO|CSTP]
//	            [-start RFC3339] [-telemetry]
//
// With -telemetry the prediction collects engine metrics (SGP4 calls,
// ephemeris cache activity) and appends a Prometheus-format snapshot to
// the output. Telemetry never changes the predicted passes.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	sinet "github.com/sinet-io/sinet"
	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/orbit"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("passpredict exiting", "error", err)
		os.Exit(1)
	}
}

// run parses arguments, predicts and prints the passes. It is the single
// exit path: every failure returns an error instead of exiting mid-flight,
// which keeps the whole flow testable.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("passpredict", flag.ContinueOnError)
	lat := fs.Float64("lat", 22.3193, "site latitude, degrees")
	lon := fs.Float64("lon", 114.1694, "site longitude, degrees")
	alt := fs.Float64("alt", 0, "site altitude, km")
	hours := fs.Float64("hours", 24, "search horizon, hours")
	minEl := fs.Float64("minel", 0, "minimum elevation mask, degrees")
	tlePath := fs.String("tle", "", "TLE file (2- or 3-line sets, repeated)")
	consName := fs.String("constellation", "Tianqi", "built-in constellation when no TLE file is given")
	startStr := fs.String("start", "", "search start (RFC3339, default: constellation epoch)")
	telemetry := fs.Bool("telemetry", false, "collect engine telemetry and print a Prometheus-format snapshot after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *lat < -90 || *lat > 90 {
		return fmt.Errorf("-lat must be in [-90, 90], got %v", *lat)
	}
	if *lon < -180 || *lon > 180 {
		return fmt.Errorf("-lon must be in [-180, 180], got %v", *lon)
	}
	if *hours <= 0 {
		return fmt.Errorf("-hours must be positive, got %v", *hours)
	}
	if *minEl < 0 || *minEl >= 90 {
		return fmt.Errorf("-minel must be in [0, 90), got %v", *minEl)
	}

	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	if *startStr != "" {
		t, err := time.Parse(time.RFC3339, *startStr)
		if err != nil {
			return fmt.Errorf("bad -start: %w", err)
		}
		start = t.UTC()
	}
	site := sinet.LatLon(*lat, *lon, *alt)
	end := start.Add(time.Duration(*hours * float64(time.Hour)))
	mask := *minEl * 3.14159265358979 / 180

	var reg *obs.Registry
	if *telemetry {
		reg = obs.New()
		orbit.SetMetrics(reg)
		defer orbit.SetMetrics(nil)
	}

	props, err := loadPropagators(*tlePath, *consName, start)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "site lat=%.4f lon=%.4f alt=%.1fkm  window %s .. %s  mask %.1f°\n\n",
		*lat, *lon, *alt, start.Format(time.RFC3339), end.Format(time.RFC3339), *minEl)

	var all []sinet.Pass
	for _, p := range props {
		pp := sinet.NewPassPredictor(p)
		all = append(all, pp.Passes(site, start, end, mask)...)
	}
	sortPasses(all)
	if len(all) == 0 {
		fmt.Fprintln(stdout, "no passes found")
		return writeSnapshot(stdout, reg)
	}
	fmt.Fprintf(stdout, "%-14s %-20s %-20s %-9s %-7s %-9s\n", "SAT", "AOS (UTC)", "LOS (UTC)", "DUR", "MAXEL", "MINRANGE")
	for _, p := range all {
		fmt.Fprintf(stdout, "%-14s %-20s %-20s %-9s %5.1f°  %7.0fkm\n",
			p.Name,
			p.AOS.Format("2006-01-02 15:04:05"),
			p.LOS.Format("2006-01-02 15:04:05"),
			p.Duration().Round(time.Second),
			p.MaxElevationDeg(), p.MinRangeKm)
	}
	fmt.Fprintf(stdout, "\n%d passes\n", len(all))
	return writeSnapshot(stdout, reg)
}

// writeSnapshot appends the end-of-run telemetry snapshot when -telemetry
// installed a registry; with no registry it is a no-op.
func writeSnapshot(stdout io.Writer, reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	fmt.Fprintf(stdout, "\n# telemetry snapshot (Prometheus text format)\n")
	return reg.WritePrometheus(stdout)
}

// loadPropagators builds propagators from a TLE file or a built-in fleet.
func loadPropagators(tlePath, consName string, epoch time.Time) ([]*sinet.Propagator, error) {
	if tlePath != "" {
		data, err := os.ReadFile(tlePath)
		if err != nil {
			return nil, err
		}
		return parseTLEFile(string(data))
	}
	var cons sinet.Constellation
	switch strings.ToLower(consName) {
	case "tianqi":
		cons = sinet.Tianqi(epoch)
	case "fossa":
		cons = sinet.FOSSA(epoch)
	case "pico":
		cons = sinet.PICO(epoch)
	case "cstp":
		cons = sinet.CSTP(epoch)
	default:
		return nil, fmt.Errorf("unknown constellation %q", consName)
	}
	props := make([]*sinet.Propagator, 0, cons.Size())
	for _, e := range cons.Sats {
		p, err := sinet.NewPropagator(e)
		if err != nil {
			return nil, err
		}
		props = append(props, p)
	}
	return props, nil
}

// parseTLEFile splits concatenated TLE sets (with optional name lines).
func parseTLEFile(text string) ([]*sinet.Propagator, error) {
	var props []*sinet.Propagator
	lines := strings.Split(text, "\n")
	var block []string
	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		tle, err := sinet.ParseTLE(strings.Join(block, "\n"))
		block = nil
		if err != nil {
			return err
		}
		p, err := sinet.NewPropagatorFromTLE(tle)
		if err != nil {
			return err
		}
		props = append(props, p)
		return nil
	}
	for _, ln := range lines {
		trimmed := strings.TrimSpace(ln)
		if trimmed == "" {
			continue
		}
		block = append(block, ln)
		if strings.HasPrefix(trimmed, "2 ") {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(props) == 0 {
		return nil, fmt.Errorf("no TLE sets found")
	}
	return props, nil
}

// sortPasses orders passes chronologically.
func sortPasses(ps []sinet.Pass) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].AOS.Before(ps[j-1].AOS); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
