package main

import (
	"io"
	"strings"
	"testing"
	"time"

	sinet "github.com/sinet-io/sinet"
)

const issTLE = `ISS (ZARYA)
1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927
2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537`

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"lat too low", []string{"-lat", "-91"}, "-lat must be in"},
		{"lat too high", []string{"-lat", "90.5"}, "-lat must be in"},
		{"lon too low", []string{"-lon", "-181"}, "-lon must be in"},
		{"lon too high", []string{"-lon", "200"}, "-lon must be in"},
		{"zero hours", []string{"-hours", "0"}, "-hours must be positive"},
		{"negative hours", []string{"-hours", "-5"}, "-hours must be positive"},
		{"negative minel", []string{"-minel", "-1"}, "-minel must be in"},
		{"minel at zenith", []string{"-minel", "90"}, "-minel must be in"},
		{"bad start", []string{"-start", "yesterday"}, "bad -start"},
		{"unknown constellation", []string{"-constellation", "starlink"}, "unknown constellation"},
		{"missing tle file", []string{"-tle", "/nonexistent/file.tle"}, "no such file"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRunPredictsPasses(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-constellation", "FOSSA", "-hours", "12"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "site lat=22.3193") {
		t.Fatalf("missing site header:\n%s", text)
	}
	if !strings.Contains(text, "passes") {
		t.Fatalf("missing pass count:\n%s", text)
	}
}

func TestTelemetrySnapshotAppended(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-constellation", "FOSSA", "-hours", "6", "-telemetry"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# telemetry snapshot (Prometheus text format)",
		"# TYPE sinet_sgp4_calls_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry snapshot missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "sinet_sgp4_calls_total 0\n") {
		t.Errorf("expected nonzero SGP4 calls in snapshot:\n%s", text)
	}
}

func TestParseTLEFileSingle(t *testing.T) {
	props, err := parseTLEFile(issTLE)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 {
		t.Fatalf("propagators = %d", len(props))
	}
	if props[0].Elements().NoradID != 25544 {
		t.Error("wrong satellite")
	}
}

func TestParseTLEFileMultiple(t *testing.T) {
	epoch := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	cons := sinet.FOSSA(epoch)
	text := ""
	for _, e := range cons.Sats {
		text += e.TLE().Format() + "\n"
	}
	props, err := parseTLEFile(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != cons.Size() {
		t.Fatalf("propagators = %d, want %d", len(props), cons.Size())
	}
}

func TestParseTLEFileErrors(t *testing.T) {
	if _, err := parseTLEFile(""); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := parseTLEFile("garbage\nmore garbage\n2 bad line"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadPropagatorsBuiltins(t *testing.T) {
	epoch := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	for _, name := range []string{"Tianqi", "fossa", "PICO", "cstp"} {
		props, err := loadPropagators("", name, epoch)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(props) == 0 {
			t.Errorf("%s: no propagators", name)
		}
	}
	if _, err := loadPropagators("", "starlink", epoch); err == nil {
		t.Error("unknown constellation accepted")
	}
	if _, err := loadPropagators("/nonexistent/file.tle", "", epoch); err == nil {
		t.Error("missing TLE file accepted")
	}
}

func TestSortPasses(t *testing.T) {
	base := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	ps := []sinet.Pass{
		{Name: "c", AOS: base.Add(3 * time.Hour)},
		{Name: "a", AOS: base},
		{Name: "b", AOS: base.Add(time.Hour)},
	}
	sortPasses(ps)
	if ps[0].Name != "a" || ps[1].Name != "b" || ps[2].Name != "c" {
		t.Errorf("order = %s %s %s", ps[0].Name, ps[1].Name, ps[2].Name)
	}
	sortPasses(nil) // must not panic
}
