package main

import (
	"io"
	"strings"
	"testing"

	sinet "github.com/sinet-io/sinet"
)

func TestRunOneDispatchesStaticExperiments(t *testing.T) {
	var out strings.Builder
	r := sinet.NewExperimentRunner(sinet.QuickScale(), &out)
	// The static experiments run instantly and cover the dispatcher.
	for _, id := range []string{"T2", "t3", "F10"} {
		if err := runOne(r, id); err != nil {
			t.Errorf("runOne(%s): %v", id, err)
		}
	}
	for _, want := range []string{"Table 2", "Table 3", "Fig. 10"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunOneUnknownID(t *testing.T) {
	r := sinet.NewExperimentRunner(sinet.QuickScale(), io.Discard)
	if err := runOne(r, "F99"); err == nil {
		t.Error("unknown experiment id accepted")
	}
	if err := runOne(r, ""); err == nil {
		t.Error("empty experiment id accepted")
	}
}

func TestRunOneAliases(t *testing.T) {
	// F4A/F4B and F5C/F5D map onto their combined experiments; verify the
	// aliases dispatch without error at quick scale.
	if testing.Short() {
		t.Skip("campaign aliases skipped in -short")
	}
	var out strings.Builder
	r := sinet.NewExperimentRunner(sinet.QuickScale(), &out)
	if err := runOne(r, "F4B"); err != nil {
		t.Fatalf("F4B: %v", err)
	}
	if !strings.Contains(out.String(), "Fig. 4a/4b") {
		t.Error("F4B alias did not run Fig4")
	}
}
