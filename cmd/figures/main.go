// Command figures regenerates every table and figure of the paper's
// evaluation from the simulation substrate and prints them as ASCII
// reports.
//
// Usage:
//
//	figures [-scale quick|standard|paper] [-seed N] [-only ID] [-o FILE]
//
// IDs follow the paper: T1 T2 T3 F3a F3b F3c F3d F4 F5a F5b F5cd F6 F8 F9
// F10 F11 F12a F12b — plus OPT, the study of the DtS optimizations the
// paper's conclusion calls for.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	sinet "github.com/sinet-io/sinet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	scaleName := flag.String("scale", "standard", "experiment scale: quick, standard or paper")
	seed := flag.Int64("seed", 42, "master random seed")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	outPath := flag.String("o", "", "write the report to a file instead of stdout")
	flag.Parse()

	var scale sinet.ExperimentScale
	switch *scaleName {
	case "quick":
		scale = sinet.QuickScale()
	case "standard":
		scale = sinet.StandardScale()
	case "paper":
		scale = sinet.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatalf("create %s: %v", *outPath, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("close %s: %v", *outPath, err)
			}
		}()
		out = f
	}

	fmt.Fprintf(out, "SINet figure reproduction — scale=%s seed=%d (%s)\n",
		scale.Name, scale.Seed, time.Now().UTC().Format(time.RFC3339))

	r := sinet.NewExperimentRunner(scale, out)
	start := time.Now()
	if *only == "" {
		if err := r.RunAll(); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			if err := runOne(r, strings.TrimSpace(id)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Fprintf(out, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

// runOne dispatches a single experiment by its paper ID.
func runOne(r *sinet.ExperimentRunner, id string) error {
	switch strings.ToUpper(id) {
	case "T1":
		_, err := r.Table1()
		return err
	case "T2":
		_, err := r.Table2()
		return err
	case "T3":
		_, err := r.Table3()
		return err
	case "F3A":
		_, err := r.Fig3a()
		return err
	case "F3B":
		_, err := r.Fig3b()
		return err
	case "F3C":
		_, err := r.Fig3c()
		return err
	case "F3D":
		_, err := r.Fig3d()
		return err
	case "F4", "F4A", "F4B":
		_, err := r.Fig4()
		return err
	case "F5A":
		_, err := r.Fig5a()
		return err
	case "F5B":
		_, err := r.Fig5b()
		return err
	case "F5CD", "F5C", "F5D":
		_, err := r.Fig5cd()
		return err
	case "F6":
		_, err := r.Fig6()
		return err
	case "F8":
		_, err := r.Fig8()
		return err
	case "F9":
		_, err := r.Fig9()
		return err
	case "F10":
		_, err := r.Fig10()
		return err
	case "F11":
		_, err := r.Fig11()
		return err
	case "F12A":
		_, err := r.Fig12a()
		return err
	case "F12B":
		_, err := r.Fig12b()
		return err
	case "OPT":
		_, err := r.Optimizations()
		return err
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
}
