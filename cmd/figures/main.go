// Command figures regenerates every table and figure of the paper's
// evaluation from the simulation substrate and prints them as ASCII
// reports.
//
// Usage:
//
//	figures [-scale quick|standard|paper] [-seed N] [-only ID] [-o FILE]
//
// IDs follow the paper: T1 T2 T3 F3a F3b F3c F3d F4 F5a F5b F5cd F6 F8 F9
// F10 F11 F12a F12b — plus OPT, the study of the DtS optimizations the
// paper's conclusion calls for.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	sinet "github.com/sinet-io/sinet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// run parses the arguments and executes the requested experiments. It is
// the single exit path: every failure returns an error instead of exiting
// mid-flight (and leaving a half-written report file unclosed).
func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	scaleName := fs.String("scale", "standard", "experiment scale: quick, standard or paper")
	seed := fs.Int64("seed", 42, "master random seed")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	outPath := fs.String("o", "", "write the report to a file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale sinet.ExperimentScale
	switch *scaleName {
	case "quick":
		scale = sinet.QuickScale()
	case "standard":
		scale = sinet.StandardScale()
	case "paper":
		scale = sinet.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer f.Close()
		out = f
	}

	fmt.Fprintf(out, "SINet figure reproduction — scale=%s seed=%d (%s)\n",
		scale.Name, scale.Seed, time.Now().UTC().Format(time.RFC3339))

	r := sinet.NewExperimentRunner(scale, out)
	start := time.Now()
	if *only == "" {
		if err := r.RunAll(); err != nil {
			return err
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			if err := runOne(r, strings.TrimSpace(id)); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(out, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	if f, ok := out.(*os.File); ok && f != os.Stdout {
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *outPath, err)
		}
	}
	return nil
}

// runOne dispatches a single experiment by its paper ID.
func runOne(r *sinet.ExperimentRunner, id string) error {
	switch strings.ToUpper(id) {
	case "T1":
		_, err := r.Table1()
		return err
	case "T2":
		_, err := r.Table2()
		return err
	case "T3":
		_, err := r.Table3()
		return err
	case "F3A":
		_, err := r.Fig3a()
		return err
	case "F3B":
		_, err := r.Fig3b()
		return err
	case "F3C":
		_, err := r.Fig3c()
		return err
	case "F3D":
		_, err := r.Fig3d()
		return err
	case "F4", "F4A", "F4B":
		_, err := r.Fig4()
		return err
	case "F5A":
		_, err := r.Fig5a()
		return err
	case "F5B":
		_, err := r.Fig5b()
		return err
	case "F5CD", "F5C", "F5D":
		_, err := r.Fig5cd()
		return err
	case "F6":
		_, err := r.Fig6()
		return err
	case "F8":
		_, err := r.Fig8()
		return err
	case "F9":
		_, err := r.Fig9()
		return err
	case "F10":
		_, err := r.Fig10()
		return err
	case "F11":
		_, err := r.Fig11()
		return err
	case "F12A":
		_, err := r.Fig12a()
		return err
	case "F12B":
		_, err := r.Fig12b()
		return err
	case "OPT":
		_, err := r.Optimizations()
		return err
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
}
