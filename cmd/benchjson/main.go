// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON document for tracking benchmark results over time
// (see the Makefile `bench` target, which writes BENCH_<date>.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_2026-08-05.json
//
// The output is a single JSON object with context (goos, goarch, cpu, Go
// version) and one entry per benchmark result line: name, package,
// iterations, ns/op, and — when -benchmem was used — B/op and allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the full JSON document: run context plus all results.
type Report struct {
	GOOS      string   `json:"goos,omitempty"`
	GOARCH    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	GoVersion string   `json:"go_version,omitempty"`
	Results   []Result `json:"results"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run parses benchmark output from r and writes the JSON report to w.
// Non-benchmark lines (test PASS/ok lines, progress output) are ignored,
// so the whole `go test -bench` stream can be piped through unfiltered.
func run(r io.Reader, w io.Writer) error {
	rep := Report{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				res.Package = pkg
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	rep.GoVersion = runtime.Version()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkFoo-8   	 1000000	      1234 ns/op	     456 B/op	       7 allocs/op
//
// Fields after iterations come in "<value> <unit>" pairs; unknown units
// are skipped so custom b.ReportMetric output does not break parsing.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = v
				seen = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = v
			}
		}
	}
	return res, seen
}
