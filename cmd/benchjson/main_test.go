package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/sinet-io/sinet
cpu: AMD EPYC 7B13
BenchmarkPassPredictionSerial-8   	       2	 512345678 ns/op	 1234567 B/op	    8901 allocs/op
BenchmarkPassPredictionParallel-8 	       4	 256789012 ns/op	 1234500 B/op	    8899 allocs/op
PASS
ok  	github.com/sinet-io/sinet	3.456s
pkg: github.com/sinet-io/sinet/internal/obs
BenchmarkCounterInc-8             	100000000	        10.52 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/sinet-io/sinet/internal/obs	1.234s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Errorf("context = %s/%s, want linux/amd64", rep.GOOS, rep.GOARCH)
	}
	if rep.GoVersion == "" {
		t.Error("missing go_version")
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(rep.Results))
	}
	first := rep.Results[0]
	if first.Name != "BenchmarkPassPredictionSerial-8" {
		t.Errorf("name = %q", first.Name)
	}
	if first.Package != "github.com/sinet-io/sinet" {
		t.Errorf("package = %q", first.Package)
	}
	if first.Iterations != 2 || first.NsPerOp != 512345678 {
		t.Errorf("iterations/ns = %d/%v", first.Iterations, first.NsPerOp)
	}
	if first.BytesPerOp != 1234567 || first.AllocsPerOp != 8901 {
		t.Errorf("mem stats = %d B/op, %d allocs/op", first.BytesPerOp, first.AllocsPerOp)
	}
	last := rep.Results[2]
	if last.Package != "github.com/sinet-io/sinet/internal/obs" {
		t.Errorf("package tracking across pkg: lines broke: %q", last.Package)
	}
	if last.NsPerOp != 10.52 {
		t.Errorf("fractional ns/op = %v, want 10.52", last.NsPerOp)
	}
}

func TestRunIgnoresNoise(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\nok  \tsome/pkg\t0.1s\nrandom noise\n"), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("results = %d, want 0", len(rep.Results))
	}
	// An empty run still emits a results array, not null.
	if !strings.Contains(out.String(), `"results": []`) {
		t.Errorf("empty results should render as []:\n%s", out.String())
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOnlyName-8",
		"BenchmarkNoNumbers-8 abc def ns/op",
		"BenchmarkNoUnit-8 100 42",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
