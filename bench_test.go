// Benchmarks regenerating every table and figure of the paper, one bench
// per artifact (see DESIGN.md's per-experiment index), plus ablation
// benches for the design choices the reproduction calls out. Each
// iteration regenerates the artifact end to end at the quick scale; the
// interesting domain numbers are attached as custom metrics.
package sinet_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	sinet "github.com/sinet-io/sinet"
	"github.com/sinet-io/sinet/internal/backhaul"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/groundstation"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/netgraph"
	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

// newRunner builds a fresh quick-scale experiment runner.
func newRunner() *sinet.ExperimentRunner {
	return sinet.NewExperimentRunner(sinet.QuickScale(), io.Discard)
}

func BenchmarkTable1Dataset(b *testing.B) {
	// One untimed warmup run: the first campaign of the process pays for
	// heap growth and first-touch page faults that say nothing about the
	// hot path, and at -benchtime 1x (the `make bench` smoke default) that
	// startup cost would otherwise dominate the reported number.
	if _, err := newRunner().Table1(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalTraces), "traces")
	}
}

func BenchmarkTable2Cost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SatMonthlyPerNode), "$/node-month")
	}
}

func BenchmarkTable3Constellations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3aPresence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig3a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DailyHours["Tianqi"]["HK"], "tianqi-h/day")
	}
}

func BenchmarkFig3bRSSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig3b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(-res.Mean["Tianqi"], "-dBm")
	}
}

func BenchmarkFig3cRSSIvsDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Fig3c(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3dWeather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig3d()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverallLoss*100, "beacon-loss-%")
	}
}

func BenchmarkFig4aWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Shrink["Tianqi"]*100, "shrink-%")
	}
}

func BenchmarkFig4bIntervals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Stretch["Tianqi"], "stretch-x")
	}
}

func BenchmarkFig5aReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig5a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SatWithRetx*100, "retx-rel-%")
		b.ReportMetric(res.SatNoRetx*100, "noretx-rel-%")
	}
}

func BenchmarkFig5bRetransmissions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig5b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanRetx["1/4λ rainy"], "worst-retx")
	}
}

func BenchmarkFig5cLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig5cd()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio, "sat/terr-x")
	}
}

func BenchmarkFig5dLatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig5cd()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Wait.Minutes(), "wait-min")
		b.ReportMetric(res.Delivery.Minutes(), "delivery-min")
	}
}

func BenchmarkFig6Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Energy.PowerRatio, "drain-ratio-x")
	}
}

func BenchmarkFig8Distances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TianqiP90, "tianqi-p90-km")
	}
}

func BenchmarkFig9WindowPosition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MiddleFraction*100, "middle-%")
	}
}

func BenchmarkFig10TerrestrialPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11TerrestrialBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TxRxEnergyFrac*100, "txrx-energy-%")
	}
}

func BenchmarkFig12aPayload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig12a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Reliability[120]*100, "120B-rel-%")
	}
}

func BenchmarkFig12bConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := newRunner().Fig12b()
		if err != nil {
			b.Fatal(err)
		}
		if rel, ok := res.ReliabilityByConcurrency[3]; ok {
			b.ReportMetric(rel*100, "3node-rel-%")
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationScheduler compares the paper's customized tracking
// scheduler against the vanilla TinyGS round-robin it replaced (§2.2).
func BenchmarkAblationScheduler(b *testing.B) {
	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	hk, _ := sinet.SiteByCode("HK")
	cons := sinet.PICO(start)
	var catalog []int
	for _, s := range cons.Sats {
		catalog = append(catalog, s.NoradID)
	}
	run := func(sched groundstation.Scheduler) int {
		res, err := sinet.RunPassive(sinet.PassiveConfig{
			Seed: 42, Start: start, Days: 1,
			Sites:          []sinet.Site{hk},
			Constellations: []sinet.Constellation{cons},
			Scheduler:      sched,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Dataset.Len()
	}
	for i := 0; i < b.N; i++ {
		tracked := run(groundstation.TrackingScheduler{})
		vanilla := run(groundstation.RoundRobinScheduler{Catalog: catalog, Slot: 10 * time.Minute})
		b.ReportMetric(float64(tracked), "tracking-traces")
		b.ReportMetric(float64(vanilla), "vanilla-traces")
	}
}

// BenchmarkAblationCapture measures the collision model with and without
// the LoRa capture effect.
func BenchmarkAblationCapture(b *testing.B) {
	run := func(capture bool) float64 {
		res, err := sinet.RunActive(sinet.ActiveConfig{
			Seed: 42, Days: 2, Nodes: 3,
			Policy: sinet.NoRetxPolicy(), AlignedPhases: true,
			Collisions: mac.CollisionModel{CaptureThresholdDB: 6, CaptureEnabled: capture},
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Reliability()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true)*100, "capture-rel-%")
		b.ReportMetric(run(false)*100, "nocapture-rel-%")
	}
}

// BenchmarkAblationRetxBudget sweeps the retransmission budget, the
// paper's central protocol knob (Fig. 5a evaluates 0 and 5).
func BenchmarkAblationRetxBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, budget := range []int{0, 2, 5} {
			res, err := sinet.RunActive(sinet.ActiveConfig{
				Seed: 42, Days: 2,
				Policy: sinet.RetxPolicy{MaxRetx: budget, AckTimeout: 3 * time.Second},
			})
			if err != nil {
				b.Fatal(err)
			}
			switch budget {
			case 0:
				b.ReportMetric(res.Reliability()*100, "retx0-rel-%")
			case 5:
				b.ReportMetric(res.Reliability()*100, "retx5-rel-%")
			}
		}
	}
}

// BenchmarkAblationTwoLevel compares the two-level simulation strategy
// (pass prediction gates beacon-level work) against naive flat stepping
// that evaluates geometry at every beacon instant of the day.
func BenchmarkAblationTwoLevel(b *testing.B) {
	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	cons := sinet.Tianqi(start)
	site := sinet.LatLon(22.3, 114.2, 0)

	b.Run("two-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			visible := 0
			for _, e := range cons.Sats {
				prop, err := sinet.NewPropagator(e)
				if err != nil {
					b.Fatal(err)
				}
				pp := sinet.NewPassPredictor(prop)
				for _, pass := range pp.Passes(site, start, start.Add(24*time.Hour), 0) {
					for t := pass.AOS; t.Before(pass.LOS); t = t.Add(cons.BeaconInterval) {
						visible++
					}
				}
			}
			b.ReportMetric(float64(visible), "beacon-slots")
		}
	})
	b.Run("flat-stepping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			visible := 0
			for _, e := range cons.Sats {
				prop, err := sinet.NewPropagator(e)
				if err != nil {
					b.Fatal(err)
				}
				for t := start; t.Before(start.Add(24 * time.Hour)); t = t.Add(cons.BeaconInterval) {
					r, v, err := prop.PositionECEF(t)
					if err != nil {
						continue
					}
					if orbit.Look(site, r, v).Elevation > 0 {
						visible++
					}
				}
			}
			b.ReportMetric(float64(visible), "beacon-slots")
		}
	})
}

// --- Micro-benchmarks on the hot substrate paths -------------------------

func BenchmarkSGP4Propagate(b *testing.B) {
	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	prop, err := sinet.NewPropagator(sinet.Tianqi(start).Sats[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prop.PropagateMinutes(float64(i % 10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPassPrediction(b *testing.B) {
	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	prop, err := sinet.NewPropagator(sinet.Tianqi(start).Sats[0])
	if err != nil {
		b.Fatal(err)
	}
	site := sinet.LatLon(22.3, 114.2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp := sinet.NewPassPredictor(prop)
		if passes := pp.Passes(site, start, start.Add(24*time.Hour), 0); len(passes) == 0 {
			b.Fatal("no passes")
		}
	}
}

// benchSites are the four continent deployment sites, the campaign shape
// whose pass prediction the serial/parallel benches compare.
func benchSites() []sinet.Geodetic {
	return []sinet.Geodetic{
		sinet.LatLon(22.3, 114.2, 0),   // Hong Kong
		sinet.LatLon(-33.87, 151.2, 0), // Sydney
		sinet.LatLon(51.5, -0.1, 0),    // London
		sinet.LatLon(40.44, -79.99, 0), // Pittsburgh
	}
}

// BenchmarkPassPredictionSerial is the seed pipeline's shape: one
// propagator per satellite, re-propagated once per (site × step).
func BenchmarkPassPredictionSerial(b *testing.B) {
	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	cons := sinet.Tianqi(start)
	sites := benchSites()
	end := start.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orbit.ResetSGP4Calls()
		total := 0
		for _, els := range cons.Sats {
			prop, err := sinet.NewPropagator(els)
			if err != nil {
				b.Fatal(err)
			}
			pp := sinet.NewPassPredictor(prop)
			for _, site := range sites {
				total += len(pp.Passes(site, start, end, 0))
			}
		}
		if total == 0 {
			b.Fatal("no passes")
		}
		b.ReportMetric(float64(total), "passes")
		b.ReportMetric(float64(orbit.SGP4Calls()), "sgp4-calls")
	}
}

// BenchmarkPassPredictionParallel is the optimized shape: one shared
// ephemeris per satellite (built concurrently), sites fanned across
// workers reading the shared samples.
func BenchmarkPassPredictionParallel(b *testing.B) {
	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	cons := sinet.Tianqi(start)
	sites := benchSites()
	end := start.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orbit.ResetSGP4Calls()
		ephs := make([]*sinet.Ephemeris, len(cons.Sats))
		sim.ForEach(len(cons.Sats), func(si int) {
			prop, err := sinet.NewPropagator(cons.Sats[si])
			if err != nil {
				b.Error(err)
				return
			}
			ephs[si] = sinet.NewEphemeris(prop, start, end, 30*time.Second)
		})
		counts := make([]int, len(sites))
		sim.ForEach(len(sites), func(gi int) {
			for _, eph := range ephs {
				counts[gi] += len(sinet.NewEphemerisPredictor(eph).Passes(sites[gi], start, end, 0))
			}
		})
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			b.Fatal("no passes")
		}
		b.ReportMetric(float64(total), "passes")
		b.ReportMetric(float64(orbit.SGP4Calls()), "sgp4-calls")
	}
}

func BenchmarkTLEParse(b *testing.B) {
	start := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	card := sinet.Tianqi(start).Sats[0].TLE().Format()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sinet.ParseTLE(card); err != nil {
			b.Fatal(err)
		}
	}
}

// megaSites spreads benchmark ground sites across latitudes from the
// equator to the polar caps at varied longitudes, deterministically.
func megaSites(n int) []sinet.Geodetic {
	sites := make([]sinet.Geodetic, n)
	for i := 0; i < n; i++ {
		lat := -80 + 160*float64(i)/float64(n-1)
		lon := float64((i * 73) % 360)
		if lon > 180 {
			lon -= 360
		}
		sites[i] = sinet.LatLon(lat, lon, 0)
	}
	return sites
}

// BenchmarkMegaConstellation exercises the batched ephemeris grid and the
// zero-allocation pass search far beyond the paper's 39-satellite catalog:
// a Starlink-class fleet swept against 100 globally spread sites. The grid
// is built once per iteration (its struct-of-arrays storage is the bounded
// six-allocation cost the B/op column shows) and one predictor per site is
// repointed across all satellites with PassesAppend into a reused buffer.
func BenchmarkMegaConstellation(b *testing.B) {
	for _, size := range []struct {
		name string
		sats int
	}{{"1k", 1000}, {"10k", 10000}} {
		b.Run(size.name, func(b *testing.B) {
			start := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
			end := start.Add(6 * time.Hour)
			cons := constellation.Mega(start, size.sats)
			props, err := cons.Propagators()
			if err != nil {
				b.Fatal(err)
			}
			sites := megaSites(100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				orbit.ResetSGP4Calls()
				grid := orbit.NewEphemerisGrid(props, start, end, orbit.EphemerisConfig{ScanStep: time.Minute})
				sim.ForEach(grid.Sats(), func(si int) { grid.Propagate(si) })
				grid.Finish()
				counts := make([]int, len(sites))
				sim.ForEach(len(sites), func(gi int) {
					pp := orbit.NewEphemerisPredictor(grid.Sat(0))
					passes := make([]orbit.Pass, 0, 4096)
					for si := 0; si < grid.Sats(); si++ {
						pp.SetSource(grid.Sat(si))
						passes = pp.PassesAppend(passes[:0], sites[gi], start, end, 0)
						counts[gi] += len(passes)
					}
				})
				total := 0
				for _, c := range counts {
					total += c
				}
				if total == 0 {
					b.Fatal("no passes")
				}
				b.ReportMetric(float64(total), "passes")
				b.ReportMetric(float64(orbit.SGP4Calls()), "sgp4-calls")
				b.ReportMetric(float64(grid.ExactRows()), "exact-rows")
			}
		})
	}
}

// BenchmarkEphemerisQuery pins the per-query cost of the three off-grid
// answer paths — grid hit, Hermite interpolation, and (instrumented) the
// same with live metrics counters, whose Load now happens once per pass
// search rather than per query. ReportAllocs pins all three at zero
// allocations per query.
func BenchmarkEphemerisQuery(b *testing.B) {
	start := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	prop, err := sinet.NewPropagator(sinet.Tianqi(start).Sats[0])
	if err != nil {
		b.Fatal(err)
	}
	eph := sinet.NewEphemeris(prop, start, start.Add(24*time.Hour), 30*time.Second)
	onGrid := start.Add(eph.Step())
	offGrid := start.Add(eph.Step() + eph.Step()/2)

	run := func(b *testing.B, at time.Time) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eph.PositionECEF(at); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("grid-hit", func(b *testing.B) { run(b, onGrid) })
	b.Run("interp", func(b *testing.B) { run(b, offGrid) })
	b.Run("instrumented", func(b *testing.B) {
		orbit.SetMetrics(obs.New())
		defer orbit.SetMetrics(nil)
		run(b, offGrid)
	})
}

// BenchmarkPassesAppend measures the steady-state pass search with a
// caller-owned buffer: after the first iteration warms the buffer the
// search runs allocation-free (ReportAllocs pins it).
func BenchmarkPassesAppend(b *testing.B) {
	start := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(24 * time.Hour)
	prop, err := sinet.NewPropagator(sinet.Tianqi(start).Sats[0])
	if err != nil {
		b.Fatal(err)
	}
	eph := sinet.NewEphemeris(prop, start, end, 30*time.Second)
	pp := sinet.NewEphemerisPredictor(eph)
	site := benchSites()[0]
	passes := pp.PassesAppend(nil, site, start, end, 0)
	if len(passes) == 0 {
		b.Fatal("no passes")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		passes = pp.PassesAppend(passes[:0], site, start, end, 0)
	}
}

// BenchmarkTopologyBuild measures time-varying network-graph snapshot
// construction — candidate ISL discovery plus per-snapshot visibility,
// range and occlusion predicates — over a 1-hour window at the default
// 1-minute cadence. The sub-benchmarks scale the Walker shell from the
// Tianqi class up to a mega-constellation slice; each iteration rebuilds
// every snapshot of a pre-propagated ephemeris grid.
func BenchmarkTopologyBuild(b *testing.B) {
	epoch := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	stations := backhaul.TianqiGroundSegment().Stations
	for _, sats := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("%dsats", sats), func(b *testing.B) {
			cons := constellation.Mega(epoch, sats)
			props, err := cons.Propagators()
			if err != nil {
				b.Fatal(err)
			}
			end := epoch.Add(time.Hour)
			grid := orbit.NewEphemerisGrid(props, epoch, end, orbit.EphemerisConfig{ScanStep: time.Minute})
			grid.PropagateAll()
			g, err := netgraph.New(grid, stations, epoch, end, netgraph.Config{})
			if err != nil {
				b.Fatal(err)
			}
			snaps := g.Snapshots()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < snaps; k++ {
					g.Build(k)
				}
			}
			b.ReportMetric(float64(snaps), "snapshots/op")
			b.ReportMetric(float64(g.LiveISLs(0)), "live-isls@t0")
		})
	}
}

// BenchmarkRoutingCampaign runs the full store-vs-relay routing campaign
// end to end — ephemeris, topology, per-packet earliest-delivery search —
// for one day of the Tianqi constellation, the paper's Table 3 baseline.
func BenchmarkRoutingCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sinet.RunRouting(sinet.RoutingConfig{Seed: 1, Days: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Packets)), "packets")
			b.ReportMetric(res.Relay.MeanSec, "relay-mean-sec")
			b.ReportMetric(res.Store.MeanSec, "store-mean-sec")
		}
	}
}
