module github.com/sinet-io/sinet

go 1.22
