// Package sinet is a from-scratch reproduction of the measurement
// infrastructure behind "Satellite IoT in Practice: A First Measurement
// Study on Network Availability, Performance, and Costs" (IMC '25).
//
// The library simulates the complete Direct-to-Satellite (DtS) IoT stack —
// SGP4 orbit propagation over synthetic constellations matching the
// paper's Table 3, a calibrated LoRa link budget with weather and Doppler,
// TinyGS-style ground stations with the paper's customized scheduler,
// beacon-gated MAC with ACKs and retransmissions, store-and-forward
// satellite gateways draining over a Chinese ground segment, and energy
// and cost models — and reruns the paper's passive (§3.1) and active
// (§3.2) measurement campaigns on top of it.
//
// Quick start:
//
//	res, err := sinet.RunPassive(sinet.PassiveConfig{Seed: 42, Days: 1})
//	if err != nil { ... }
//	fmt.Println(res.Shrinkage("Tianqi", "HK"))
//
// The cmd/figures binary regenerates every table and figure; the
// examples/ directory holds runnable scenario walkthroughs.
package sinet

import (
	"context"
	"io"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/cost"
	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/experiments"
	"github.com/sinet-io/sinet/internal/fault"
	"github.com/sinet-io/sinet/internal/lora"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/trace"
)

// Version is the library release tag.
const Version = "1.0.0"

// --- Orbital mechanics -------------------------------------------------

// TLE is a parsed two-line element set.
type TLE = orbit.TLE

// Elements are Brouwer mean orbital elements in SGP4 units.
type Elements = orbit.Elements

// Propagator is an initialized SGP4 propagator.
type Propagator = orbit.Propagator

// PassPredictor finds contact windows over ground sites.
type PassPredictor = orbit.PassPredictor

// Ephemeris is a precomputed satellite trajectory on a fixed time grid,
// shared by pass searches over many sites.
type Ephemeris = orbit.Ephemeris

// StateSource supplies satellite ECEF state — a Propagator or Ephemeris.
type StateSource = orbit.StateSource

// Pass is one satellite contact window.
type Pass = orbit.Pass

// Geodetic is a WGS-84 position (radians / km).
type Geodetic = orbit.Geodetic

// LookAngles is observer-to-satellite geometry.
type LookAngles = orbit.LookAngles

// ParseTLE parses a two- or three-line element set with checksum
// verification.
func ParseTLE(text string) (TLE, error) { return orbit.ParseTLE(text) }

// NewPropagator initializes SGP4 for an element set.
func NewPropagator(e Elements) (*Propagator, error) { return orbit.NewPropagator(e) }

// NewPropagatorFromTLE initializes SGP4 from a parsed TLE.
func NewPropagatorFromTLE(t TLE) (*Propagator, error) { return orbit.NewPropagatorFromTLE(t) }

// NewPassPredictor wraps a propagator for pass searching.
func NewPassPredictor(p *Propagator) *PassPredictor { return orbit.NewPassPredictor(p) }

// NewEphemeris samples p's trajectory on the grid start + k·step covering
// [start, end]; build it once per satellite and share it across sites and
// goroutines.
func NewEphemeris(p *Propagator, start, end time.Time, step time.Duration) *Ephemeris {
	return orbit.NewEphemeris(p, start, end, step)
}

// NewEphemerisPredictor wraps a shared ephemeris for pass searching on its
// sampling grid.
func NewEphemerisPredictor(e *Ephemeris) *PassPredictor {
	return orbit.NewEphemerisPredictor(e)
}

// LatLon builds a Geodetic from degrees and altitude km.
func LatLon(latDeg, lonDeg, altKm float64) Geodetic {
	return orbit.NewGeodeticDeg(latDeg, lonDeg, altKm)
}

// --- Constellations ----------------------------------------------------

// Constellation is one operator's fleet plus DtS beacon configuration.
type Constellation = constellation.Constellation

// Tianqi returns the paper's 22-satellite Tianqi fleet.
func Tianqi(epoch time.Time) Constellation { return constellation.Tianqi(epoch) }

// TianqiSubset returns the first n Tianqi satellites (Fig. 3a growth).
func TianqiSubset(epoch time.Time, n int) Constellation {
	return constellation.TianqiSubset(epoch, n)
}

// FOSSA returns the 3-satellite FOSSA fleet.
func FOSSA(epoch time.Time) Constellation { return constellation.FOSSA(epoch) }

// PICO returns the 9-satellite PICO fleet.
func PICO(epoch time.Time) Constellation { return constellation.PICO(epoch) }

// CSTP returns the 5-satellite CSTP fleet.
func CSTP(epoch time.Time) Constellation { return constellation.CSTP(epoch) }

// AllConstellations returns the four measured fleets in paper order.
func AllConstellations(epoch time.Time) []Constellation { return constellation.All(epoch) }

// Mega synthesizes a Starlink-class Walker fleet of n satellites for
// beyond-the-paper scale studies (see constellation.Mega).
func Mega(epoch time.Time, n int) Constellation { return constellation.Mega(epoch, n) }

// FootprintKm2 returns a satellite's coverage-cap area for an altitude and
// minimum elevation.
func FootprintKm2(altKm, minElevationRad float64) float64 {
	return constellation.FootprintKm2(altKm, minElevationRad)
}

// --- Campaigns (the paper's measurements) -------------------------------

// PassiveConfig configures a §3.1 passive campaign.
type PassiveConfig = core.PassiveConfig

// PassiveResult is a completed passive campaign with analysis methods.
type PassiveResult = core.PassiveResult

// ContactStat is one contact window's theoretical/effective comparison.
type ContactStat = core.ContactStat

// ActiveConfig configures a §3.2 active campaign.
type ActiveConfig = core.ActiveConfig

// ActiveResult is a completed active campaign with analysis methods.
type ActiveResult = core.ActiveResult

// PacketOutcome traces one sensor reading end-to-end.
type PacketOutcome = core.PacketOutcome

// TerrestrialConfig configures the terrestrial LoRaWAN baseline.
type TerrestrialConfig = core.TerrestrialConfig

// TerrestrialResult is a completed baseline campaign.
type TerrestrialResult = core.TerrestrialResult

// Site is one Table 1 measurement city.
type Site = core.Site

// EnergyComparison is the Fig. 6 satellite-vs-terrestrial energy result.
type EnergyComparison = core.EnergyComparison

// StationAvailability is one station's availability-under-churn summary.
type StationAvailability = core.StationAvailability

// ProgressFunc observes campaign phase progress. Set it on a campaign
// config's Progress field; it is called with strictly increasing completed
// counts per phase and never concurrently.
type ProgressFunc = core.ProgressFunc

// ErrInvalidConfig is the sentinel every campaign config validation error
// wraps; match with errors.Is.
var ErrInvalidConfig = core.ErrInvalidConfig

// RunPassive executes a passive measurement campaign.
func RunPassive(cfg PassiveConfig) (*PassiveResult, error) { return core.RunPassive(cfg) }

// RunPassiveCtx is RunPassive with cooperative cancellation: a cancelled
// context aborts the campaign within about one coarse step and returns
// ctx.Err().
func RunPassiveCtx(ctx context.Context, cfg PassiveConfig) (*PassiveResult, error) {
	return core.RunPassiveCtx(ctx, cfg)
}

// RunActive executes an active (Tianqi-node) campaign.
func RunActive(cfg ActiveConfig) (*ActiveResult, error) { return core.RunActive(cfg) }

// RunActiveCtx is RunActive with cooperative cancellation.
func RunActiveCtx(ctx context.Context, cfg ActiveConfig) (*ActiveResult, error) {
	return core.RunActiveCtx(ctx, cfg)
}

// RunTerrestrial executes the terrestrial baseline campaign.
func RunTerrestrial(cfg TerrestrialConfig) (*TerrestrialResult, error) {
	return core.RunTerrestrial(cfg)
}

// RoutingConfig configures a store-and-forward-vs-ISL-relay routing
// campaign over the time-varying network graph.
type RoutingConfig = core.RoutingConfig

// RoutingResult is a completed routing campaign.
type RoutingResult = core.RoutingResult

// RoutedPacket is one packet's delivery record under both policies.
type RoutedPacket = core.RoutedPacket

// Routing delivery policies.
const (
	PolicyStore   = core.PolicyStore
	PolicyRelay   = core.PolicyRelay
	PolicyCompare = core.PolicyCompare
)

// RunRouting executes a routing campaign.
func RunRouting(cfg RoutingConfig) (*RoutingResult, error) { return core.RunRouting(cfg) }

// RunRoutingCtx is RunRouting with cooperative cancellation.
func RunRoutingCtx(ctx context.Context, cfg RoutingConfig) (*RoutingResult, error) {
	return core.RunRoutingCtx(ctx, cfg)
}

// --- Fault injection ------------------------------------------------------

// FaultConfig parameterizes deterministic infrastructure disruption:
// ground-station Gilbert churn (MTBF/MTTR), scheduled maintenance windows,
// drain-station outages and per-satellite beacon blackouts. Attach one to
// PassiveConfig.Faults or ActiveConfig.Faults; the zero value (or a nil
// field) injects nothing and reproduces fault-free results byte-identically.
type FaultConfig = fault.Config

// FaultSchedule is one component's queryable outage timeline.
type FaultSchedule = fault.Schedule

// LoRaParams are the physical-layer modulation parameters; set
// PassiveConfig.Radio / ActiveConfig.Radio to override the DtS defaults
// (validated up front against illegal SF/BW combinations).
type LoRaParams = lora.Params

// DefaultDtSParams returns the DtS downlink/uplink modulation defaults.
func DefaultDtSParams() LoRaParams { return lora.DefaultDtSParams() }

// RevisitStats is a constellation's theoretical coverage/revisit profile
// at one latitude.
type RevisitStats = core.RevisitStats

// RevisitAnalysis sweeps latitudes and reports the constellation's
// theoretical coverage and revisit gaps — the "anytime, anywhere" bound
// of §3.1.
func RevisitAnalysis(cons Constellation, latitudesDeg []float64, start time.Time, days int) ([]RevisitStats, error) {
	return core.RevisitAnalysis(cons, latitudesDeg, start, days)
}

// CompareEnergy derives the Fig. 6 energy comparison from two campaigns.
func CompareEnergy(sat *ActiveResult, terr *TerrestrialResult, battery Battery) EnergyComparison {
	return core.CompareEnergy(sat, terr, battery)
}

// PaperSites returns the eight Table 1 deployments.
func PaperSites() []Site { return core.PaperSites() }

// SiteByCode looks up a Table 1 site by its code (e.g. "HK").
func SiteByCode(code string) (Site, bool) { return core.SiteByCode(code) }

// YunnanPlantation is the active campaign's deployment location.
func YunnanPlantation() Geodetic { return core.YunnanPlantation() }

// --- Protocol and device knobs ------------------------------------------

// RetxPolicy is the DtS retransmission policy.
type RetxPolicy = mac.RetxPolicy

// DefaultRetxPolicy allows the paper's five retransmissions.
func DefaultRetxPolicy() RetxPolicy { return mac.DefaultRetxPolicy() }

// NoRetxPolicy disables retransmissions (the paper's default-off mode).
func NoRetxPolicy() RetxPolicy { return mac.NoRetxPolicy() }

// Weather is a sky state for controlled experiments.
type Weather = channel.Weather

// Weather states.
const (
	Sunny  = channel.Sunny
	Cloudy = channel.Cloudy
	Rainy  = channel.Rainy
	Stormy = channel.Stormy
)

// ConstantWeather pins the sky state for a whole campaign.
type ConstantWeather = core.ConstantWeather

// Antenna is a ground antenna profile.
type Antenna = channel.Antenna

// Antenna profiles from the paper's Fig. 5b comparison.
var (
	QuarterWave     = channel.QuarterWave
	FiveEighthsWave = channel.FiveEighthsWave
)

// Battery is a battery pack for lifetime projection.
type Battery = energy.Battery

// DefaultBattery is the paper's 5,000 mAh-class pack.
func DefaultBattery() Battery { return energy.DefaultBattery() }

// --- Cost model ----------------------------------------------------------

// Deployment is a bill of materials plus traffic for cost accounting.
type Deployment = cost.Deployment

// USD is a monetary amount.
type USD = cost.USD

// PaperAgricultureSatellite is the paper's Tianqi deployment cost model.
func PaperAgricultureSatellite() Deployment { return cost.PaperAgricultureSatellite() }

// PaperAgricultureTerrestrial is the paper's terrestrial deployment.
func PaperAgricultureTerrestrial() Deployment { return cost.PaperAgricultureTerrestrial() }

// --- Dataset -------------------------------------------------------------

// Dataset is a packet-trace collection with CSV/JSON codecs.
type Dataset = trace.Dataset

// TraceRecord is one received-packet trace entry.
type TraceRecord = trace.Record

// ReadTracesCSV parses a dataset written by Dataset.WriteCSV.
func ReadTracesCSV(r io.Reader) (*Dataset, error) { return trace.ReadCSV(r) }

// ReadTracesJSON parses a dataset written by Dataset.WriteJSON.
func ReadTracesJSON(r io.Reader) (*Dataset, error) { return trace.ReadJSON(r) }

// --- Experiment harness ----------------------------------------------------

// ExperimentScale sizes a full reproduction run.
type ExperimentScale = experiments.Scale

// ExperimentRunner reproduces the paper's tables and figures.
type ExperimentRunner = experiments.Runner

// QuickScale is a seconds-scale run for CI and demos.
func QuickScale() ExperimentScale { return experiments.QuickScale() }

// StandardScale is the default cmd/figures configuration.
func StandardScale() ExperimentScale { return experiments.StandardScale() }

// PaperScale approaches the published campaign spans.
func PaperScale() ExperimentScale { return experiments.PaperScale() }

// NewExperimentRunner builds a runner writing rendered experiment output
// to out (nil discards).
func NewExperimentRunner(scale ExperimentScale, out io.Writer) *ExperimentRunner {
	return experiments.New(scale, out)
}
