GO ?= go

.PHONY: all build test race bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs one iteration of the pass-prediction benches as a
# compile-and-run check; real measurements use `go test -bench . -benchtime 5s`.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPassPrediction(Serial|Parallel)$$' -benchtime 1x .

ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) bench-smoke
