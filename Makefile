GO ?= go
BENCHTIME ?= 1x

.PHONY: all build test race bench bench-smoke fuzz-smoke serve-smoke crash-smoke cluster-smoke trace-smoke staticcheck govulncheck ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# bench runs every benchmark with -benchmem and converts the output into a
# machine-readable BENCH_<date>.json via cmd/benchjson, so runs are easy to
# diff over time. Raise BENCHTIME (e.g. BENCHTIME=5s) for real measurements;
# the 1x default is a fast everything-still-compiles-and-runs pass.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... > bench.raw.txt
	$(GO) run ./cmd/benchjson < bench.raw.txt > BENCH_$$(date +%F).json
	@rm -f bench.raw.txt
	@echo "wrote BENCH_$$(date +%F).json"

# bench-smoke runs one iteration of the pass-prediction benches, the 1k
# mega-constellation sweep, the zero-alloc ephemeris query benches, and the
# smallest topology-build case as a compile-and-run check; real measurements
# use `go test -bench . -benchtime 5s`.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPassPrediction(Serial|Parallel)$$|BenchmarkMegaConstellation/1k|BenchmarkEphemerisQuery|BenchmarkPassesAppend$$|BenchmarkTopologyBuild/16sats' -benchtime 1x -benchmem .

# fuzz-smoke briefly exercises each fuzz target; the committed corpora under
# testdata/fuzz/ already run as regression cases in plain `make test`.
fuzz-smoke:
	$(GO) test ./internal/orbit/ -run '^$$' -fuzz FuzzParseTLE -fuzztime 10s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzReadCSV -fuzztime 10s

# serve-smoke proves the daemon end to end: start sinetd on a random port
# with the cache disabled, submit a small passive job over HTTP, poll it to
# completion, and require the served bytes to be identical to the same
# campaign run directly through the sinet library.
serve-smoke:
	$(GO) run ./cmd/sinetd -smoke

# crash-smoke is the crash drill: SIGKILL a real sinetd mid-campaign, restart
# it on the same journal, and require the resumed job to serve bytes identical
# to an uninterrupted run (see cmd/sinetd/crash_test.go).
crash-smoke:
	$(GO) test ./cmd/sinetd/ -run TestCrashKillResumeServesByteIdenticalResult -count=1 -v

# cluster-smoke is the fleet drill: a real coordinator fronting two real
# sinetd workers, a campaign sharded across both, one worker SIGKILLed
# mid-shard, and the finished job required to serve bytes identical to a
# direct library run (see cmd/sinetd/cluster_test.go). The killed job's
# stitched distributed trace is captured to SINET_TRACE_OUT (the CI
# workflow uploads it as an artifact) and must show coordinator spans,
# worker spans and the resubmitted shard under one trace ID.
cluster-smoke:
	SINET_TRACE_OUT=$(CURDIR)/stitched-trace.json \
		$(GO) test ./cmd/sinetd/ -run TestClusterKillWorkerServesByteIdenticalResult -count=1 -v

# trace-smoke re-runs the cluster drill's trace assertions alone plus the
# in-process stitched-trace tests: one trace ID spanning coordinator,
# >= 2 worker spans, and a shard.attempt with attempt >= 2 after the kill.
trace-smoke: cluster-smoke
	$(GO) test ./internal/cluster/ -run 'TestClusterStitchedShardTrace|TestClusterProxiedTrace' -count=1 -v
	$(GO) test ./internal/service/ -run 'TestJobTraceEndpoint|TestDebugTracesEndpoint|TestTraceparentPropagation' -count=1 -v

# staticcheck / govulncheck run only when installed, so `make ci` stays usable
# in hermetic environments; the GitHub workflow installs both.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 \
		&& staticcheck ./... \
		|| echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"

govulncheck:
	@command -v govulncheck >/dev/null 2>&1 \
		&& govulncheck ./... \
		|| echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"

ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -shuffle=on ./...   # includes the internal/obs concurrent-scrape tests
	$(MAKE) staticcheck
	$(MAKE) govulncheck
	$(MAKE) bench-smoke
	$(MAKE) serve-smoke
	$(MAKE) crash-smoke
	$(MAKE) cluster-smoke
